"""System facade: build, drive and measure a hybrid P2P deployment.

:class:`HybridSystem` owns the full simulation stack -- engine, physical
topology, router, capacity model, transport, bootstrap server, peers --
and exposes the operations experiments need:

* :meth:`build` -- construct an N-peer system by running every join
  through the real protocol (t-peers first, then s-peers, as a static
  population build; use :meth:`add_peer` for dynamic churn);
* :meth:`populate` / :meth:`store_from` -- drive data insertion;
* :meth:`run_lookups` -- issue lookup workloads in waves and pump the
  engine until each wave resolves;
* :meth:`crash_peers` / :meth:`leave_peers` + :meth:`settle` -- churn;
* metric accessors: :meth:`query_stats`, :meth:`data_distribution`,
  :meth:`join_latencies`, :meth:`snetwork_sizes`.

Determinism: all randomness flows from named streams of one root seed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..enhance.binning import choose_landmarks, coordinate_of
from ..enhance.heterogeneity import assign_roles
from ..net.links import CapacityModel, HeterogeneityConfig
from ..net.routing import make_router
from ..net.stress import LinkStress
from ..net.topology import (
    NodeKind,
    PhysicalTopology,
    config_for_size,
    generate_transit_stub,
)
from ..overlay.idspace import ClusteredIdSpace, IdSpace
from ..overlay.transport import Transport
from ..sim.engine import Engine
from ..sim.rng import RngRegistry
from ..sim.trace import TraceBus
from .config import ROUTING_FINGER, HybridConfig
from .hybridpeer import HybridPeer
from .lookup import QueryRegistry, QueryStats
from .server import BootstrapServer

__all__ = ["HybridSystem"]


class HybridSystem:
    """A complete, runnable instance of the hybrid peer-to-peer system."""

    def __init__(
        self,
        config: HybridConfig,
        n_peers: int,
        seed: int = 0,
        topology: Optional[PhysicalTopology] = None,
        track_stress: bool = False,
        capacity_config: Optional[HeterogeneityConfig] = None,
        queries: Optional[QueryRegistry] = None,
    ) -> None:
        config.validate()
        if n_peers < 1:
            raise ValueError("n_peers must be >= 1")
        self.config = config
        self.n_peers = n_peers
        self.rngs = RngRegistry(seed)
        self.engine = Engine()
        self.trace = TraceBus()
        if config.interest_band_bits > 0:
            self.idspace = ClusteredIdSpace(config.id_bits, config.interest_band_bits)
        else:
            self.idspace = IdSpace(config.id_bits)
        # Injectable so the sharded executor can substitute its
        # shard-aware registry before any peer captures the reference.
        self.queries = queries if queries is not None else QueryRegistry()

        # --- physical substrate -----------------------------------------
        if topology is None:
            topology = generate_transit_stub(
                config_for_size(n_peers + 1), self.rngs.stream("topology")
            )
        if topology.n < n_peers + 1:
            raise ValueError(
                f"topology has {topology.n} hosts; need {n_peers + 1} "
                "(peers + server)"
            )
        self.topology = topology
        self.router = make_router(topology)
        self.stress = LinkStress() if track_stress else None

        # Access-link capacities are indexed by overlay address
        # (0 = server, 1..N = peers): the paper's 1/3-1/3-1/3 classes.
        self.capacities = CapacityModel(
            n_peers + 1, self.rngs.stream("capacity"), capacity_config
        )
        self.transport = Transport(
            self.engine,
            router=self.router,
            capacity_of=self._capacity_of,
            stress=self.stress,
            trace=self.trace,
        )

        # --- host placement -----------------------------------------------
        # The server sits on a transit node (a well-connected host); each
        # peer gets its own distinct host, chosen uniformly.
        place_rng = self.rngs.stream("placement")
        transit = topology.transit_nodes
        self.server_host = int(transit[int(place_rng.integers(0, len(transit)))])
        candidates = [h for h in range(topology.n) if h != self.server_host]
        hosts = place_rng.choice(len(candidates), size=n_peers, replace=False)
        self._peer_hosts = [int(candidates[int(i)]) for i in hosts]

        # --- landmarks (Section 5.2) ----------------------------------------
        if config.n_landmarks > 0:
            self.landmarks = choose_landmarks(
                self.router, config.n_landmarks, self.rngs.stream("landmarks")
            )
        else:
            self.landmarks = ()

        # --- actors ------------------------------------------------------------
        self.server = BootstrapServer(
            host=self.server_host,
            engine=self.engine,
            transport=self.transport,
            idspace=self.idspace,
            config=config,
            rng=self.rngs.stream("server"),
            trace=self.trace,
            landmarks=self.landmarks,
        )
        self.transport.register(self.server)
        self.peers: Dict[int, HybridPeer] = {}
        self._next_address = 1
        self._stored_count = 0
        self._issued_stores = 0
        self.trace.subscribe("data.stored", self._on_stored)
        self.built = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _on_stored(self, record) -> None:
        self._stored_count += 1

    def _capacity_of(self, address: int) -> float:
        """Access-link capacity used by the transport's delay model.

        Resolves through the peer object so the capacity that drove role
        assignment is exactly the capacity that shapes delays (peers are
        created in role order, which permutes addresses).
        """
        peer = self.peers.get(address)
        if peer is not None:
            return peer.capacity
        return self.capacities.capacity(address)

    def _new_peer(
        self,
        host: int,
        capacity: float,
        interest: Optional[str],
    ) -> HybridPeer:
        address = self._next_address
        self._next_address += 1
        coordinate = None
        if self.landmarks:
            coordinate = coordinate_of(self.router, host, self.landmarks)
        peer = HybridPeer(
            address=address,
            host=host,
            engine=self.engine,
            transport=self.transport,
            idspace=self.idspace,
            config=self.config,
            rng=self.rngs.stream("protocol"),
            queries=self.queries,
            capacity=capacity,
            interest=interest,
            coordinate=coordinate,
            trace=self.trace,
        )
        self.transport.register(peer)
        self.peers[address] = peer
        return peer

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, interests: Optional[Sequence[Optional[str]]] = None) -> None:
        """Construct the system by joining all ``n_peers`` peers.

        Roles are pre-assigned to hit ``p_s`` exactly (and, with the
        Section 5.1 enhancement, to give t-duty to the fastest links);
        the pre-assignment stands in for the capacity ranking the
        server would accumulate online.  t-peers join first -- an
        s-network cannot exist before its anchor -- then s-peers.
        Every join runs through the full message protocol.
        """
        if self.built:
            raise RuntimeError("system already built")
        if interests is not None and len(interests) != self.n_peers:
            raise ValueError("interests must have one entry per peer")
        capacities = [self.capacities.capacity(1 + i) for i in range(self.n_peers)]
        roles = assign_roles(
            capacities,
            self.config.p_s,
            self.rngs.stream("roles"),
            self.config.heterogeneity_aware,
        )
        order = sorted(range(self.n_peers), key=lambda i: (roles[i] != "t", i))
        self.server.preassigned_roles = {}
        peers_in_order: List[HybridPeer] = []
        for i in order:
            peer = self._new_peer(
                host=self._peer_hosts[i],
                capacity=capacities[i],
                interest=interests[i] if interests is not None else None,
            )
            self.server.preassigned_roles[peer.address] = roles[i]
            peers_in_order.append(peer)
        for peer in peers_in_order:
            peer.begin_join()
            self.engine.run_while(lambda: not peer.joined)
            if not peer.joined:
                raise RuntimeError(f"peer {peer.address} failed to join")
        if self.config.ring_routing == ROUTING_FINGER:
            self.install_fingers()
        if self.config.mesh_extra_links > 0:
            self._wire_mesh()
        self.built = True

    def build_bulk(self, interests: Optional[Sequence[Optional[str]]] = None) -> None:
        """Construct the joined state directly, without protocol traffic.

        The message-driven :meth:`build` walks every t-join linearly
        around the ring, which is O(n_t^2) events -- hours at 10^5+
        peers.  This path materializes the same *kind* of steady state
        (sorted ring with server directory, degree-capped trees,
        installed fingers) in O(n log n) by applying the server's own
        decision procedures (p_id generation, role pre-assignment,
        balanced s-network choice) and a deterministic breadth-first
        tree fill in place of the random join walk.  It is deterministic
        per seed but *not* message-equivalent to :meth:`build`, so small
        scales with golden baselines keep using the protocol build.

        Requires heartbeats off: liveness timers are armed by the join
        protocol this path skips.
        """
        if self.built:
            raise RuntimeError("system already built")
        if self.config.heartbeats_enabled:
            raise ValueError("build_bulk requires heartbeats_enabled=False")
        if interests is not None and len(interests) != self.n_peers:
            raise ValueError("interests must have one entry per peer")
        import heapq as _heapq
        from collections import deque

        from .config import ASSIGN_BALANCED, CONNECT_STAR

        capacities = [self.capacities.capacity(1 + i) for i in range(self.n_peers)]
        roles = assign_roles(
            capacities,
            self.config.p_s,
            self.rngs.stream("roles"),
            self.config.heterogeneity_aware,
        )
        order = sorted(range(self.n_peers), key=lambda i: (roles[i] != "t", i))
        self.server.preassigned_roles = {}
        t_list: List[HybridPeer] = []
        s_list: List[HybridPeer] = []
        for i in order:
            peer = self._new_peer(
                host=self._peer_hosts[i],
                capacity=capacities[i],
                interest=interests[i] if interests is not None else None,
            )
            self.server.preassigned_roles[peer.address] = roles[i]
            (t_list if roles[i] == "t" else s_list).append(peer)
        if not t_list:
            raise ValueError("build_bulk needs at least one t-peer")

        # --- t-network: draw p_ids the way the server would, sort into
        # a ring, set the pointers the join triangle would have set.
        used_pids = set()
        for peer in t_list:
            pid = self.server.generate_pid(peer.address)
            while pid in used_pids:
                pid = self.server.generate_pid(peer.address)
            used_pids.add(pid)
            peer.p_id = pid
        t_list.sort(key=lambda p: p.p_id)
        n_t = len(t_list)
        for j, peer in enumerate(t_list):
            pred = t_list[(j - 1) % n_t]
            suc = t_list[(j + 1) % n_t]
            peer.role = "t"
            peer.t_peer = peer.address
            peer.predecessor, peer.predecessor_pid = pred.address, pred.p_id
            peer.successor, peer.successor_pid = suc.address, suc.p_id
            peer.segment_lo = pred.p_id
            peer.joined = True
            peer.join_latency = 0.0
            self.server.ring.insert(peer.p_id, peer.address)
            self.server.s_counts.setdefault(peer.address, 0)
            if peer.coordinate is not None:
                self.server.t_coords[peer.address] = tuple(peer.coordinate)
        self.server.t_count = n_t
        self.server.joins_served = n_t

        # --- s-networks: balanced assignment via a heap (same smallest-
        # count-then-address rule as the server's online policy, but
        # O(log n_t) per join); other policies go through the server's
        # own chooser.  Tree fill is breadth-first under the degree cap.
        balanced = self.config.assignment == ASSIGN_BALANCED
        heap = [(0, p.address) for p in t_list]
        _heapq.heapify(heap)
        slots: Dict[int, deque] = {p.address: deque([p.address]) for p in t_list}
        for peer in s_list:
            if balanced:
                count, anchor = _heapq.heappop(heap)
                _heapq.heappush(heap, (count + 1, anchor))
            else:
                anchor = self.server.choose_snetwork(peer.interest, peer.coordinate)
            anchor_peer = self.peers[anchor]
            queue = slots[anchor]
            if self.config.connect_policy == CONNECT_STAR:
                parent = anchor_peer
            else:
                while True:
                    cand = self.peers[queue[0]]
                    spare = self.config.delta - len(cand.children)
                    if cand.role == "s":
                        spare -= 1  # the cp link occupies one degree slot
                        if not cand.children:
                            spare = max(spare, 1)  # leaf takes its first child
                    if spare > 0:
                        parent = cand
                        break
                    queue.popleft()
                queue.append(peer.address)
            parent.children.add(peer.address)
            peer.role = "s"
            peer.cp = parent.address
            peer.t_peer = anchor
            peer.p_id = anchor_peer.p_id
            peer.segment_lo = anchor_peer.predecessor_pid
            peer.joined = True
            peer.join_latency = 0.0
            self.server.s_counts[anchor] = self.server.s_counts.get(anchor, 0) + 1
            self.server.s_count += 1
            self.server.joins_served += 1

        if self.config.ring_routing == ROUTING_FINGER:
            self.install_fingers()
        if self.config.mesh_extra_links > 0:
            self._wire_mesh()
        self.built = True

    def add_peer(self, interest: Optional[str] = None, wait: bool = True) -> HybridPeer:
        """Dynamically join one more peer (role decided by the server)."""
        host_rng = self.rngs.stream("placement")
        used = {p.host for p in self.peers.values()} | {self.server_host}
        free = [h for h in range(self.topology.n) if h not in used]
        if free:
            host = int(free[int(host_rng.integers(0, len(free)))])
        else:  # more peers than hosts: share
            host = int(host_rng.integers(0, self.topology.n))
        # Per-address capacity; the model grows on demand for late joiners.
        capacity = self.capacities.capacity(self._next_address)
        peer = self._new_peer(host, capacity, interest)
        peer.begin_join()
        if wait:
            self.engine.run_while(lambda: not peer.joined)
        return peer

    def install_fingers(self) -> None:
        """Install consistent finger tables on every t-peer.

        Stands in for Chord's background stabilization protocol (which
        the paper assumes but does not simulate): finger ``k`` of a
        t-peer points at the owner of ``p_id + 2**k``.
        """
        members = self.server.ring.members()
        if not members:
            return
        for peer in self.peers.values():
            if peer.role != "t" or not peer.alive:
                continue
            fingers = []
            seen = set()
            for k in range(self.idspace.bits):
                start = self.idspace.finger_start(peer.p_id, k)
                f_pid, f_addr = self.server.ring.owner_of(start)
                if f_addr != peer.address and f_addr not in seen:
                    seen.add(f_addr)
                    fingers.append((f_pid, f_addr))
            peer.set_fingers(fingers)

    def _wire_mesh(self) -> None:
        """Mesh ablation: add extra intra-s-network links (Section 3.2.2
        argues trees beat meshes on duplicate deliveries; this lets the
        benchmark verify that claim)."""
        rng = self.rngs.stream("mesh")
        groups: Dict[int, List[int]] = {}
        for peer in self.peers.values():
            if peer.role == "s":
                groups.setdefault(peer.t_peer, []).append(peer.address)
        for t_addr, members in groups.items():
            pool = members + [t_addr]
            if len(pool) < 3:
                continue
            for addr in members:
                peer = self.peers[addr]
                for _ in range(self.config.mesh_extra_links):
                    other = int(pool[int(rng.integers(0, len(pool)))])
                    if other == addr or other in peer.tree_neighbors():
                        continue
                    peer.extra_links.add(other)
                    target = self.peers.get(other, self.peers.get(t_addr))
                    if other == t_addr:
                        target = self.peers[t_addr]
                    if target is not None:
                        target.extra_links.add(addr)

    # ------------------------------------------------------------------
    # Data plane driving
    # ------------------------------------------------------------------
    def store_from(self, origin: int, key: str, value) -> None:
        """Issue one store from a given peer (does not pump the engine)."""
        self._issued_stores += 1
        self.peers[origin].store(key, value)

    def populate(
        self,
        items: Iterable[Tuple[int, str, object]],
        drain: bool = True,
        max_events: int = 50_000_000,
    ) -> int:
        """Insert ``(origin_address, key, value)`` items; returns count.

        With ``drain=True`` the engine runs until every item reached its
        final holder (tracked via the ``data.stored`` trace event).
        """
        count = 0
        for origin, key, value in items:
            self.store_from(origin, key, value)
            count += 1
        if drain:
            self.engine.run_while(
                lambda: self._stored_count < self._issued_stores, max_events
            )
            # Every item has a holder, but side-channel confirmations
            # (BitTorrent tracker registrations, store acks for bypass
            # links) may still be in flight -- and the paper assumes
            # "the data are inserted to the system before it is looked
            # up", so settle them too.
            if self.config.heartbeats_enabled or self.config.replica_sync_period > 0:
                # Periodic timers (HELLO, anti-entropy) keep the event
                # heap non-empty forever; advance time instead.
                self.settle(5_000.0)
            else:
                self.engine.run()
        return count

    def run_lookups(
        self,
        pairs: Iterable[Tuple[int, str]],
        wave_size: int = 200,
        max_events: int = 200_000_000,
    ) -> None:
        """Issue ``(origin_address, key)`` lookups in concurrent waves.

        Each wave is pumped until fully resolved (success or timer
        expiry) before the next is issued, bounding the number of
        simultaneously in-flight floods the way a paced workload would.
        """
        wave: List[Tuple[int, str]] = []

        def flush() -> None:
            for origin, key in wave:
                peer = self.peers[origin]
                if peer.alive:
                    peer.lookup(key)
            wave.clear()
            self.engine.run_while(lambda: self.queries.unresolved > 0, max_events)

        for pair in pairs:
            wave.append(pair)
            if len(wave) >= wave_size:
                flush()
        if wave:
            flush()

    # ------------------------------------------------------------------
    # Churn driving
    # ------------------------------------------------------------------
    def crash_peers(self, addresses: Iterable[int]) -> int:
        """Abruptly kill the given peers (no notifications, data lost)."""
        n = 0
        for addr in addresses:
            peer = self.peers.get(addr)
            if peer is not None and peer.alive:
                peer.crash()
                n += 1
        return n

    def crash_random_fraction(self, fraction: float) -> List[int]:
        """Crash a random fraction of alive peers; returns their addresses."""
        if not (0.0 <= fraction <= 1.0):
            raise ValueError("fraction must be in [0, 1]")
        rng = self.rngs.stream("churn")
        alive = [a for a, p in self.peers.items() if p.alive]
        k = int(round(fraction * len(alive)))
        chosen = [int(a) for a in rng.choice(alive, size=k, replace=False)] if k else []
        self.crash_peers(chosen)
        return chosen

    def leave_peers(self, addresses: Iterable[int], wait: bool = True) -> None:
        """Gracefully remove peers (protocol-driven departure)."""
        targets = [self.peers[a] for a in addresses if a in self.peers]
        for peer in targets:
            if peer.alive:
                peer.leave()
        if wait:
            self.engine.run_while(
                lambda: any(p.alive and (p.leaving or p.want_leave) for p in targets)
            )

    def settle(self, duration: float) -> None:
        """Advance simulated time (lets detection/repair/elections run)."""
        self.engine.run_until(self.engine.now + duration)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def alive_peers(self) -> List[HybridPeer]:
        return [p for p in self.peers.values() if p.alive]

    def t_peers(self) -> List[HybridPeer]:
        return [p for p in self.alive_peers() if p.role == "t"]

    def s_peers(self) -> List[HybridPeer]:
        return [p for p in self.alive_peers() if p.role == "s"]

    def query_stats(self) -> QueryStats:
        return self.queries.stats()

    def join_latencies(self) -> Dict[str, np.ndarray]:
        """Measured join latencies, split by role."""
        t = [p.join_latency for p in self.peers.values() if p.role == "t" and p.joined]
        s = [p.join_latency for p in self.peers.values() if p.role == "s" and p.joined]
        return {"t": np.asarray(t, dtype=float), "s": np.asarray(s, dtype=float)}

    def data_distribution(self) -> np.ndarray:
        """Items per alive peer (the Fig. 4 quantity)."""
        return np.asarray([len(p.database) for p in self.alive_peers()], dtype=int)

    def total_items(self) -> int:
        return int(sum(len(p.database) for p in self.alive_peers()))

    def total_replicas(self) -> int:
        """Copies in replica stores (repro.replica; 0 at k == 1)."""
        return int(sum(len(p.replicas) for p in self.alive_peers()))

    def snetwork_sizes(self) -> Dict[int, int]:
        """s-peers per t-peer (anchor address -> member count)."""
        sizes: Dict[int, int] = {p.address: 0 for p in self.t_peers()}
        for peer in self.s_peers():
            sizes[peer.t_peer] = sizes.get(peer.t_peer, 0) + 1
        return sizes

    def ring_order(self) -> List[int]:
        """Alive t-peer addresses in ring (p_id) order, from live pointers."""
        t_peers = self.t_peers()
        if not t_peers:
            return []
        start = min(t_peers, key=lambda p: p.p_id)
        order = [start.address]
        cur = self.peers.get(start.successor)
        hops = 0
        while cur is not None and cur.address != start.address and hops <= len(self.peers):
            order.append(cur.address)
            cur = self.peers.get(cur.successor)
            hops += 1
        return order
