"""Configuration of the hybrid peer-to-peer system.

:class:`HybridConfig` gathers every tunable the paper defines or
implies.  The two headline knobs are ``p_s`` (fraction of s-peers,
Section 3.1) and ``ttl`` (flood radius); ``delta`` is the tree degree
cap of Section 3.2.2 (δ = 3 in the paper's simulations).

Placement, connect-point policy, ring routing and the Section 5
enhancements are all selected here so experiments can A/B them without
touching protocol code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = [
    "HybridConfig",
    "SEARCH_FLOOD",
    "SEARCH_WALK",
    "PLACEMENT_DIRECT",
    "PLACEMENT_SPREAD",
    "ROUTING_LINEAR",
    "ROUTING_FINGER",
    "CONNECT_STAR",
    "CONNECT_DEGREE",
    "CONNECT_LINK_USAGE",
    "ASSIGN_BALANCED",
    "ASSIGN_RANDOM",
    "ASSIGN_INTEREST",
    "ASSIGN_BINNED",
    "SNETWORK_GNUTELLA",
    "SNETWORK_BITTORRENT",
]

# s-network search modes (Section 1: "use flooding or random walks to
# look up data items").
SEARCH_FLOOD = "flood"
SEARCH_WALK = "walk"

# Data placement schemes (Section 3.4).
PLACEMENT_DIRECT = "direct"  # scheme 1: owning t-peer stores the item
PLACEMENT_SPREAD = "spread"  # scheme 2: random spreading to s-peers

# Ring forwarding.  The paper's simulation forwards linearly ("the
# number of hops ... is proportional to the total number of t-peers",
# Section 6.3); finger-table routing is the Chord-style acceleration the
# analysis in Section 4 assumes for joins.
ROUTING_LINEAR = "linear"
ROUTING_FINGER = "finger"

# Connect-point selection for s-peer joins (Sections 3.2.2, 5.1).
CONNECT_STAR = "star"  # every s-peer hangs directly off the t-peer
CONNECT_DEGREE = "degree"  # random branch walk until degree < delta
CONNECT_LINK_USAGE = "link_usage"  # degree walk gated by degree/capacity

# s-network assignment policies at the server (Sections 3.2.2, 5.2, 5.3).
ASSIGN_BALANCED = "balanced"  # smallest s-network first
ASSIGN_RANDOM = "random"
ASSIGN_INTEREST = "interest"  # Section 5.3
ASSIGN_BINNED = "binned"  # Section 5.2 landmark binning

# s-network style (Sections 3.1, 5.5).
SNETWORK_GNUTELLA = "gnutella"
SNETWORK_BITTORRENT = "bittorrent"


@dataclass(frozen=True)
class HybridConfig:
    """All tunables of the hybrid system.

    Frozen so a config can safely be shared between the system, the
    server and every peer; derive variants with :meth:`with_changes`.
    """

    # --- headline system parameters (Sections 3.1, 6) -----------------
    p_s: float = 0.5
    delta: int = 3
    ttl: int = 4

    # --- identifier space ---------------------------------------------
    id_bits: int = 32
    pid_strategy: str = "random"  # "random" | "hash" (of address)

    # --- data plane ----------------------------------------------------
    placement: str = PLACEMENT_SPREAD
    ring_routing: str = ROUTING_LINEAR
    # How queries traverse an s-network: TTL flood (the paper's default)
    # or k independent random walks.
    search_mode: str = SEARCH_FLOOD
    walkers: int = 4  # concurrent random walkers per query
    walk_ttl: int = 16  # hop budget per walker
    lookup_timeout: float = 60_000.0  # ms
    # On timeout, retry with a grown TTL this many times (Section 3.4:
    # "may choose to increase the TTL value ... and reflood").
    max_refloods: int = 0
    reflood_ttl_step: int = 2

    # --- s-network construction ----------------------------------------
    connect_policy: str = CONNECT_DEGREE
    assignment: str = ASSIGN_BALANCED
    snetwork_style: str = SNETWORK_GNUTELLA
    # Ablation: number of extra non-tree links per s-peer (0 = pure tree,
    # the paper's design; >0 approximates a Gnutella mesh).
    mesh_extra_links: int = 0

    # --- liveness / crash detection (Section 3.2.2) ----------------------
    heartbeats_enabled: bool = False
    hello_period: float = 1_000.0  # ms
    neighbor_timeout: float = 3_500.0  # ms
    ack_suppress: float = 500.0  # ms
    # How long the server waits for an s-peer to report a crashed t-peer
    # before falling back to plain ring excision.
    election_grace: float = 3_000.0  # ms
    # s-peers retry (re)join walks that got swallowed by a crashed peer.
    join_retry_timeout: float = 5_000.0  # ms

    # --- Section 5 enhancements -----------------------------------------
    heterogeneity_aware: bool = False  # 5.1: fast peers become t-peers
    # 5.1: degree/capacity gate for connect points.  Calibrated to the
    # default CapacityModel units (LOW = 0.05): 40 lets a LOW-capacity
    # peer take ~1 extra child while HIGH-capacity peers fill the whole
    # delta budget.
    link_usage_threshold: float = 40.0
    n_landmarks: int = 0  # 5.2: 0 disables binning
    # 5.3: width (in bits) of per-category key bands; 0 = uniform hashing.
    # Interest-based workloads need > 0 so one category maps to one segment.
    interest_band_bits: int = 0
    bypass_links: bool = False  # 5.4
    bypass_lifetime: float = 120_000.0  # ms before an idle bypass expires
    # Durable segment replication (the repro.replica subsystem, not a
    # placement scheme): 1 reproduces the paper exactly (single copy;
    # crashes lose the crashed segments' data, Fig. 5b).  k > 1 keeps
    # the owner t-peer's copy plus replicas on the next k-1 t-peers
    # along the ring, so the segment survives any crash of fewer than k
    # consecutive t-peers and failover promotes the replicas to primary
    # copies.  (Distinct from ``placement``, which only picks *where in
    # one s-network* the single authoritative copy lands.)
    replication_factor: int = 1
    # --- repro.replica: quorum writes + anti-entropy (replication > 1) --
    # Replica acknowledgments required before a tracked write is
    # reported durable to its origin (the owner's own copy counts, so 1
    # acknowledges from the owner alone and replication_factor waits
    # for every successor replica).
    write_quorum: int = 1
    # Owner-side wait per fan-out attempt before re-sending ReplicaWrite
    # to the successor chain.
    replica_ack_timeout: float = 1_000.0  # ms
    # Fan-out re-sends after the first attempt times out.
    replica_write_retries: int = 1
    # Anti-entropy period: the owner digests its segment and probes its
    # replica chain; 0 disables the periodic exchange (event-triggered
    # repair after failover still runs).
    replica_sync_period: float = 0.0  # ms
    # --- repro.swarm: tracker-mode chunked bulk transfer (Section 5.5) --
    # Off by default: like replication_factor=1, the disabled state is
    # bit-identical to the pre-swarm system (pure state allocation, no
    # messages or timers).
    swarm_enabled: bool = False
    # Bytes per piece for the live runtime's put-file split; the sim
    # uses explicit piece counts, not byte sizes.
    swarm_piece_size: int = 65536
    # Per-holder cap on outstanding PieceRequests from one downloader.
    swarm_inflight: int = 4
    # Downloader tick: stale requested pieces are re-issued and the
    # tracker re-queried (refreshing holder sets mid-download is what
    # makes the swarm effect kick in).
    swarm_request_timeout: float = 2_000.0  # ms
    # Popular-data caching (the paper's stated future work, Section 7).
    cache_enabled: bool = False
    cache_capacity: int = 32  # entries per peer
    cache_ttl: float = 300_000.0  # ms before an unrefreshed copy expires

    # --- misc ------------------------------------------------------------
    server_address: int = 0

    def validate(self) -> None:
        if not (0.0 <= self.p_s <= 1.0):
            raise ValueError(f"p_s must be in [0, 1], got {self.p_s}")
        if self.delta < 1:
            raise ValueError(f"delta must be >= 1, got {self.delta}")
        if self.ttl < 1:
            raise ValueError(f"ttl must be >= 1, got {self.ttl}")
        if not (1 <= self.id_bits <= 128):
            raise ValueError(f"id_bits out of range: {self.id_bits}")
        if self.pid_strategy not in ("random", "hash"):
            raise ValueError(f"unknown pid_strategy {self.pid_strategy!r}")
        if self.placement not in (PLACEMENT_DIRECT, PLACEMENT_SPREAD):
            raise ValueError(f"unknown placement {self.placement!r}")
        if self.search_mode not in (SEARCH_FLOOD, SEARCH_WALK):
            raise ValueError(f"unknown search_mode {self.search_mode!r}")
        if self.walkers < 1:
            raise ValueError("walkers must be >= 1")
        if self.walk_ttl < 1:
            raise ValueError("walk_ttl must be >= 1")
        if self.ring_routing not in (ROUTING_LINEAR, ROUTING_FINGER):
            raise ValueError(f"unknown ring_routing {self.ring_routing!r}")
        if self.lookup_timeout <= 0:
            raise ValueError("lookup_timeout must be positive")
        if self.max_refloods < 0 or self.reflood_ttl_step < 0:
            raise ValueError("reflood settings must be non-negative")
        if self.connect_policy not in (CONNECT_STAR, CONNECT_DEGREE, CONNECT_LINK_USAGE):
            raise ValueError(f"unknown connect_policy {self.connect_policy!r}")
        if self.assignment not in (
            ASSIGN_BALANCED,
            ASSIGN_RANDOM,
            ASSIGN_INTEREST,
            ASSIGN_BINNED,
        ):
            raise ValueError(f"unknown assignment {self.assignment!r}")
        if self.snetwork_style not in (SNETWORK_GNUTELLA, SNETWORK_BITTORRENT):
            raise ValueError(f"unknown snetwork_style {self.snetwork_style!r}")
        if self.mesh_extra_links < 0:
            raise ValueError("mesh_extra_links must be >= 0")
        if self.hello_period <= 0 or self.neighbor_timeout <= 0 or self.ack_suppress < 0:
            raise ValueError("liveness timers must be positive")
        if self.election_grace <= 0:
            raise ValueError("election_grace must be positive")
        if self.join_retry_timeout <= 0:
            raise ValueError("join_retry_timeout must be positive")
        if self.neighbor_timeout <= self.hello_period:
            raise ValueError(
                "neighbor_timeout must exceed hello_period or every peer "
                "looks crashed between heartbeats"
            )
        if self.link_usage_threshold <= 0:
            raise ValueError("link_usage_threshold must be positive")
        if self.n_landmarks < 0:
            raise ValueError("n_landmarks must be >= 0")
        if self.interest_band_bits < 0 or self.interest_band_bits >= self.id_bits:
            raise ValueError("interest_band_bits must be in [0, id_bits)")
        if self.bypass_lifetime <= 0:
            raise ValueError("bypass_lifetime must be positive")
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if not (1 <= self.write_quorum <= self.replication_factor):
            raise ValueError(
                "write_quorum must be in [1, replication_factor] "
                f"(got {self.write_quorum} with k={self.replication_factor})"
            )
        if self.replica_ack_timeout <= 0:
            raise ValueError("replica_ack_timeout must be positive")
        if self.replica_write_retries < 0:
            raise ValueError("replica_write_retries must be >= 0")
        if self.replica_sync_period < 0:
            raise ValueError("replica_sync_period must be >= 0")
        if self.swarm_piece_size < 1:
            raise ValueError("swarm_piece_size must be >= 1")
        if self.swarm_inflight < 1:
            raise ValueError("swarm_inflight must be >= 1")
        if self.swarm_request_timeout <= 0:
            raise ValueError("swarm_request_timeout must be positive")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        if self.cache_ttl <= 0:
            raise ValueError("cache_ttl must be positive")
        if self.assignment == ASSIGN_BINNED and self.n_landmarks < 1:
            raise ValueError("binned assignment requires n_landmarks >= 1")

    def with_changes(self, **changes) -> "HybridConfig":
        """Return a validated copy with fields replaced."""
        cfg = replace(self, **changes)
        cfg.validate()
        return cfg
