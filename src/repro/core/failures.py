"""Crash detection and recovery (Section 3.2.2).

The paper's liveness machinery, implemented by :class:`LivenessMixin`:

* periodic **HELLO** heartbeats to every neighbor;
* a **per-neighbor timer**, reset by any HELLO or acknowledgment;
  expiry means the neighbor crashed;
* **acknowledgments of data queries** double as liveness proofs, and a
  **suppress timer** throttles them under heavy query load ("peers send
  acknowledgment messages only when the suppress timer is timeout and a
  data query message is received");
* a recently-sent acknowledgment **cancels that neighbor's next
  scheduled HELLO** to save bandwidth (per neighbor -- deferring the
  whole broadcast would starve neighbors that are not querying us);
* crash reactions: s-peers whose cp died rejoin (or start a replacement
  election at the server when the cp was the t-peer); t-peers whose
  ring neighbor died ask the server for repair.

Heartbeats are off by default (``HybridConfig.heartbeats_enabled``);
experiments that crash peers turn them on.
"""

from __future__ import annotations

from functools import partial
from typing import Set

from ..overlay.messages import Ack, CrashReport, Hello, RingRepairRequest
from ..sim.timers import PeriodicTimer, Timer

__all__ = ["LivenessMixin"]


class LivenessMixin:
    """Heartbeats, neighbor timers and crash recovery."""

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    def start_heartbeats(self) -> None:
        """Begin HELLO broadcasting and neighbor watching (if enabled)."""
        if not self.config.heartbeats_enabled:
            return
        if self.hello_timer is None:
            self.hello_timer = PeriodicTimer(
                self.engine, self.config.hello_period, self._send_hellos
            )
        if not self.hello_timer.running:
            self.hello_timer.start()
        self._refresh_liveness()

    def _liveness_neighbors(self) -> Set[int]:
        """Everyone this peer heartbeats: tree links + ring pointers."""
        neighbors = self.tree_neighbors()
        if self.role == "t":
            for n in (self.predecessor, self.successor):
                if n not in (-1, self.address):
                    neighbors.add(n)
        neighbors.discard(self.address)
        return neighbors

    def _send_hellos(self) -> None:
        if not self.alive:
            return
        now = self.engine.now
        targets = []
        for n in self._liveness_neighbors():
            # Bandwidth optimisation (Section 3.2.2): a recent
            # acknowledgment already proved our liveness to this
            # neighbor, so "the scheduled HELLO message is canceled" --
            # per neighbor, never for the whole broadcast, or neighbors
            # that are not currently querying us would starve and
            # falsely declare us crashed.
            if now - self._last_liveness_sent.get(n, float("-inf")) < self.config.hello_period:
                continue
            self._last_liveness_sent[n] = now
            targets.append(n)
        if targets:
            self.send_many(targets, Hello())

    # ------------------------------------------------------------------
    # Neighbor watching
    # ------------------------------------------------------------------
    def watch_neighbor(self, addr: int) -> None:
        """(Re)arm the crash-detection timer for a neighbor."""
        if not self.config.heartbeats_enabled or not self.alive:
            return
        if addr in (-1, self.address):
            return
        timer = self.neighbor_timers.get(addr)
        if timer is None:
            timer = Timer(
                self.engine,
                self.config.neighbor_timeout,
                partial(self._neighbor_timeout, addr),
            )
            self.neighbor_timers[addr] = timer
        timer.start()

    def unwatch_neighbor(self, addr: int) -> None:
        timer = self.neighbor_timers.pop(addr, None)
        if timer is not None:
            timer.cancel()

    def note_alive(self, addr: int) -> None:
        """Fresh evidence that ``addr`` is up: reset its timer."""
        timer = self.neighbor_timers.get(addr)
        if timer is not None:
            timer.reset()

    def note_query_activity(self, sender: int, query_id: int) -> None:
        """A data query arrived: the sender is alive, and per the paper
        we acknowledge it (suppressed under heavy load) so that crash
        detection reacts faster when queries are flowing."""
        if self.neighbor_timers:  # note_alive, inlined for the hot path
            timer = self.neighbor_timers.get(sender)
            if timer is not None:
                timer.reset()
        if not self.config.heartbeats_enabled or sender == self.address:
            return
        if self.engine.now >= self.ack_suppress_until:
            self.ack_suppress_until = self.engine.now + self.config.ack_suppress
            self._last_liveness_sent[sender] = self.engine.now
            self.send(sender, Ack(query_id=query_id))

    def _refresh_liveness(self) -> None:
        """Reconcile timers with the current neighbor set (role changes)."""
        if not self.config.heartbeats_enabled:
            return
        wanted = self._liveness_neighbors()
        for addr in list(self.neighbor_timers):
            if addr not in wanted:
                self.unwatch_neighbor(addr)
        for addr in wanted:
            if addr not in self.neighbor_timers:
                self.watch_neighbor(addr)

    def stop_liveness(self) -> None:
        """Cancel every timer this peer owns (departure/crash cleanup)."""
        if self.hello_timer is not None:
            self.hello_timer.stop()
        for timer in self.neighbor_timers.values():
            timer.cancel()
        self.neighbor_timers.clear()

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def on_Hello(self, msg: Hello) -> None:
        self.note_alive(msg.sender)

    def on_Ack(self, msg: Ack) -> None:
        self.note_alive(msg.sender)

    # ------------------------------------------------------------------
    # Crash reactions
    # ------------------------------------------------------------------
    def _neighbor_timeout(self, addr: int) -> None:
        if not self.alive:
            return
        self.neighbor_timers.pop(addr, None)
        self.emit("crash.detected", suspect=addr)
        self._handle_neighbor_crash(addr)

    def _handle_neighbor_crash(self, addr: int) -> None:
        self.extra_links.discard(addr)
        self.drop_bypass(addr)
        if self.role == "t":
            if addr in self.children:
                # A child's subtree will rejoin through us by itself.
                self.children.discard(addr)
                return
            if addr in (self.predecessor, self.successor):
                self.send(self.server_address, RingRepairRequest(suspect=addr))
            return
        # s-peer
        if addr == self.cp:
            self.cp = -1
            if addr == self.t_peer:
                # "The disconnected s-peers will compete to replace the
                # crashed t-peer by sending messages to the server."
                self.send(
                    self.server_address,
                    CrashReport(crashed=addr, reporter=self.address, reporter_is_speer=True),
                )
            else:
                self._start_rejoin()
        elif addr in self.children:
            self.children.discard(addr)
