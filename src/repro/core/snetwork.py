"""s-network behaviour: the unstructured stub trees (Section 3.2.2).

:class:`SNetworkMixin` implements:

* the **degree-constrained join walk** -- a join request descends from
  the t-peer along a random branch until it reaches a peer with degree
  below δ, the new s-peer's *connect point* (cp);
* the **star policy** ablation (no degree cap: everyone hangs off the
  t-peer, diameter two but unbalanced -- the paper's motivating strawman);
* the **link-usage policy** of Section 5.1 (degree/capacity gating);
* graceful s-peer leave with neighbor notification, subtree rejoin and
  load transfer to a neighbor;
* rejoin of disconnected subtree roots through the t-peer, with retry
  timers so walks swallowed by a concurrent crash are not lost.

The resulting topology is a tree ("we use a tree instead of a mesh due
to bandwidth efficiency consideration"); the mesh ablation adds extra
links at build time in :mod:`repro.core.hybrid`.
"""

from __future__ import annotations

from typing import Set

from ..overlay.messages import (
    LoadTransfer,
    ServerUpdate,
    SJoinAccept,
    SJoinRequest,
    SLeaveNotify,
    SRejoinRequest,
    TPeerUpdate,
)
from ..sim.timers import Timer
from .config import CONNECT_LINK_USAGE, CONNECT_STAR

__all__ = ["SNetworkMixin"]


class SNetworkMixin:
    """Tree membership for s-peers (and the tree root role of t-peers)."""

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def tree_neighbors(self) -> Set[int]:
        """Direct s-network neighbors: children plus cp (if any)."""
        if self.cp != -1:
            return self.children | {self.cp}
        return set(self.children)

    def flood_targets(self, exclude: int = -1) -> Set[int]:
        """Where a flood fans out: tree links plus mesh-ablation links."""
        targets = self.tree_neighbors() | self.extra_links
        targets.discard(exclude)
        targets.discard(self.address)
        return targets

    def tree_degree(self) -> int:
        return len(self.children) + (1 if self.cp != -1 else 0)

    def _child_capacity(self) -> int:
        """How many more children this peer may accept."""
        return self.config.delta - self.tree_degree()

    def owns_locally(self, d_id: int) -> bool:
        """Is ``d_id`` served by this peer's own s-network?"""
        if self.role == "t":
            return self.owns(d_id)
        return self.idspace.owner_segment_contains(d_id, self.segment_lo, self.p_id)

    # ------------------------------------------------------------------
    # Join walk
    # ------------------------------------------------------------------
    def on_SJoinRequest(self, msg: SJoinRequest) -> None:
        """Accept the new s-peer here, or pass it down a random branch."""
        if self.role == "t" and self.leaving:
            # Mid-handoff: accepting now would hand the joiner a cp that
            # is about to depart.  Push the walk below us (the promoted
            # child adopts the subtree); with no children the joiner's
            # retry timer re-routes through the server.
            if self.children:
                branches = sorted(self.children)
                self.send(branches[int(self.rng.integers(0, len(branches)))], msg)
            return
        if self._accepts_here():
            self.children.add(msg.new_address)
            self.send(
                msg.new_address,
                SJoinAccept(
                    cp=self.address,
                    t_peer=self.t_peer,
                    p_id=self.p_id,
                    segment_lo=self.segment_lo if self.role == "s" else self.predecessor_pid,
                ),
            )
            self.watch_neighbor(msg.new_address)
            return
        branches = sorted(self.children)
        nxt = branches[int(self.rng.integers(0, len(branches)))]
        self.send(nxt, msg)

    def _accepts_here(self) -> bool:
        policy = self.config.connect_policy
        if policy == CONNECT_STAR:
            # Star topology: the t-peer takes everyone (no cap).  An
            # s-peer should never see a join request under this policy.
            return self.role == "t"
        if not self.children:
            # A leaf must take the first child even if the degree cap or
            # link-usage frowns; otherwise the walk would dead-end.
            return True
        if self._child_capacity() <= 0:
            return False
        if policy == CONNECT_LINK_USAGE:
            # Section 5.1: accept only while degree/capacity stays low.
            usage = (self.tree_degree() + 1) / self.capacity
            return usage <= self.config.link_usage_threshold
        return True

    def on_SJoinAccept(self, msg: SJoinAccept) -> None:
        """New s-peer: adopt cp, t-peer pointer and shared p_id."""
        self._cancel_rejoin_retry()
        self.role = "s"
        self.cp = msg.cp
        self.t_peer = msg.t_peer
        self.p_id = msg.p_id
        self.segment_lo = msg.segment_lo
        self.watch_neighbor(msg.cp)
        if not self.joined:
            self._complete_join()
            self.send(
                self.server_address,
                ServerUpdate(kind="s_join", address=self.address, extra=self.t_peer),
            )
        else:
            self.emit("s.rejoined", cp=msg.cp)

    # ------------------------------------------------------------------
    # Leave
    # ------------------------------------------------------------------
    def leave_s(self) -> None:
        """Graceful s-peer departure (Section 3.2.2)."""
        neighbors = self.tree_neighbors()
        notice = SLeaveNotify(leaver=self.address)
        self.send_many(neighbors, notice)
        self.send(
            self.server_address,
            ServerUpdate(kind="s_leave", address=self.address, extra=self.t_peer),
        )
        # "The leaving s-peer should also choose a neighbor to transfer
        # the load to" -- acked and retried across the neighbor list so
        # a concurrent departure of the first choice loses nothing.
        order = sorted(neighbors)
        if order:
            first = int(self.rng.integers(0, len(order)))
            order = order[first:] + order[:first]
        self._depart_with_load(order + [self.t_peer], reason="leave")

    def on_SLeaveNotify(self, msg: SLeaveNotify) -> None:
        """A tree neighbor left: drop the link; rejoin if it was our cp."""
        self.children.discard(msg.leaver)
        self.extra_links.discard(msg.leaver)
        self.unwatch_neighbor(msg.leaver)
        if self.cp == msg.leaver:
            self.cp = -1
            self._start_rejoin()

    # ------------------------------------------------------------------
    # Rejoin of disconnected subtree roots
    # ------------------------------------------------------------------
    def _start_rejoin(self, via_server: bool = False) -> None:
        """Reattach to the s-network via the t-peer, with retries.

        Retries after the first alternate through the server, which
        routes the request to whoever *currently* owns our segment --
        the cached ``t_peer`` pointer may be stale if the anchor
        departed while we were disconnected.
        """
        if self.role != "s" or not self.alive:
            return
        target = self.server_address if via_server else self.t_peer
        self.send(target, SRejoinRequest(new_address=self.address, p_id=self.p_id))
        self._arm_rejoin_retry()

    def _arm_rejoin_retry(self) -> None:
        if self._rejoin_timer is None:
            self._rejoin_timer = Timer(
                self.engine, self.config.join_retry_timeout, self._rejoin_retry
            )
        self._rejoin_timer.start()

    def _cancel_rejoin_retry(self) -> None:
        if self._rejoin_timer is not None:
            self._rejoin_timer.cancel()

    def _rejoin_retry(self) -> None:
        """The walk was swallowed (crash/departure en route); try again."""
        if self.role != "s" or self.cp != -1 or not self.alive:
            return
        self.emit("s.rejoin.retry")
        self._start_rejoin(via_server=True)

    def on_SRejoinRequest(self, msg: SRejoinRequest) -> None:
        """The t-peer treats a rejoin exactly like a fresh join walk."""
        self.on_SJoinRequest(SJoinRequest(new_address=msg.new_address))

    def on_RejoinRedirect(self, msg) -> None:
        """Server points us at the promoted replacement t-peer."""
        old_t = self.t_peer
        self.t_peer = msg.new_t
        if self.cp == old_t or self.cp == -1:
            self.cp = -1
            self._start_rejoin()
        # Our whole subtree must learn the new t-peer.
        update = TPeerUpdate(new_t=msg.new_t, old_t=old_t)
        self.send_many(self.children, update)

    def on_TPeerUpdate(self, msg: TPeerUpdate) -> None:
        """The anchoring t-peer changed (handoff/promotion)."""
        if self.role != "s":
            return
        self.t_peer = msg.new_t
        if self.cp == msg.old_t:
            self.cp = msg.new_t
            self.watch_neighbor(msg.new_t)
        self.send_many([c for c in self.children if c != msg.sender], msg)
