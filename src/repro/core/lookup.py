"""Lookup bookkeeping: latency, failure ratio, and *connum*.

The paper's evaluation metrics (Section 6) are all per-lookup
quantities:

* **lookup latency** -- "time difference between the time when the peer
  issues the data lookup request and the time when the peer receives
  the data", successful lookups only;
* **lookup failure ratio** -- failed lookups / total lookups, where a
  failure is an expired lookup timer;
* **connum** -- "the number of peers all the data lookup requests
  contact during the simulation".

:class:`QueryRegistry` is a measurement-only shared object: every peer
that receives a lookup-related message calls :meth:`contact`, origins
call :meth:`start`/:meth:`succeed`/:meth:`fail`.  It deliberately sits
outside the message plane (the real system would not have it; NS2
experiments use the same trick via its trace files).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = ["QueryRecord", "QueryRegistry", "QueryStats"]

PENDING = "pending"
SUCCESS = "success"
FAILED = "failed"


@dataclass(slots=True)
class QueryRecord:
    """Lifecycle of one lookup operation.

    Contact counters live in flat arrays on the registry (indexed by
    query id) so the per-message :meth:`QueryRegistry.contact` hot path
    is two list operations; the record exposes them as read-only
    properties for compatibility.
    """

    query_id: int
    origin: int
    key: str
    d_id: int
    start_time: float
    local: bool  # did the d_id fall in the origin's own s-network?
    status: str = PENDING
    end_time: float = float("nan")
    holder: int = -1
    refloods: int = 0
    via_bypass: bool = False
    hops: int = 0  # overlay hops travelled by the winning answer path
    registry: Optional["QueryRegistry"] = field(
        default=None, repr=False, compare=False
    )

    @property
    def contacts(self) -> int:
        """Peers contacted on behalf of this lookup (registry-backed)."""
        reg = self.registry
        if reg is None:
            return 0
        i = self.query_id - reg._base
        return reg._contacts[i] if 0 <= i < len(reg._contacts) else 0

    @property
    def duplicate_contacts(self) -> int:
        """Duplicate flood receipts for this lookup (registry-backed)."""
        reg = self.registry
        if reg is None:
            return 0
        i = self.query_id - reg._base
        return reg._duplicates[i] if 0 <= i < len(reg._duplicates) else 0

    @property
    def latency(self) -> float:
        """Wall-clock (simulated) latency; NaN while pending/failed."""
        if self.status != SUCCESS:
            return float("nan")
        return self.end_time - self.start_time


@dataclass(frozen=True)
class QueryStats:
    """Aggregates over a set of completed lookups (paper's metrics)."""

    total: int
    successes: int
    failures: int
    pending: int
    failure_ratio: float
    mean_latency: float
    median_latency: float
    p95_latency: float
    connum: int
    mean_contacts_per_lookup: float
    duplicate_contacts: int
    local_fraction: float

    def __str__(self) -> str:
        return (
            f"lookups={self.total} fail_ratio={self.failure_ratio:.4f} "
            f"mean_latency={self.mean_latency:.1f}ms connum={self.connum}"
        )


class QueryRegistry:
    """Tracks every lookup in flight and aggregates the paper's metrics."""

    def __init__(self) -> None:
        self._records: Dict[int, QueryRecord] = {}
        self._next_id = 0
        # Contact counters, indexed by ``query_id - _base``.  Query ids
        # are assigned densely, so flat lists beat a dict of records on
        # the per-message hot path; ``_base`` tracks how many ids were
        # retired by reset() (the id counter stays monotone).
        self._base = 0
        self._contacts: List[int] = []
        self._duplicates: List[int] = []
        self.unresolved = 0
        # Completion watchers, keyed by query id.  The simulator never
        # registers any (polling its own records between events is
        # free); the live runtime uses them to resolve a waiting client
        # connection the instant succeed()/fail() lands, instead of
        # sleeping on a poll loop.  Guarded by a truthiness check so the
        # sim hot path pays one falsy-dict test, nothing more.
        self._watchers: Dict[int, List[Callable[[QueryRecord], None]]] = {}

    # ------------------------------------------------------------------
    def start(
        self, origin: int, key: str, d_id: int, time: float, local: bool
    ) -> QueryRecord:
        """Register a new lookup; returns its record (with fresh id)."""
        qid = self._next_id
        self._next_id += 1
        rec = QueryRecord(
            query_id=qid, origin=origin, key=key, d_id=d_id,
            start_time=time, local=local, registry=self,
        )
        self._records[qid] = rec
        self._contacts.append(0)
        self._duplicates.append(0)
        self.unresolved += 1
        return rec

    def rebase(self, id_base: int) -> None:
        """Start assigning query ids at ``id_base``.

        Flood duplicate-suppression keys on ``(query_id, attempt)``
        with no origin, which is safe in the simulator (one shared
        registry, globally unique ids) but not between live nodes that
        each count from zero: two origins reusing an id suppress each
        other's floods and only recover on the reflood timer.  A live
        node therefore claims a disjoint id block before its first
        lookup; the flat contact arrays are indexed relative to
        ``_base``, so nothing else changes.
        """
        if self._records or self._next_id != self._base:
            raise RuntimeError("rebase() must run before any lookup starts")
        self._next_id = self._base = int(id_base)

    def get(self, query_id: int) -> Optional[QueryRecord]:
        return self._records.get(query_id)

    def contact(self, query_id: int, duplicate: bool = False) -> None:
        """One more peer was contacted on behalf of this lookup.

        Counted regardless of the lookup's current status: flood packets
        still in flight after the answer arrived consumed bandwidth,
        which is exactly what connum approximates.  Unknown (or retired)
        query ids are ignored, as before.
        """
        i = query_id - self._base
        if duplicate:
            counts = self._duplicates
        else:
            counts = self._contacts
        if 0 <= i < len(counts):
            counts[i] += 1

    def succeed(self, query_id: int, time: float, holder: int, hops: int = 0) -> bool:
        """Mark success (first answer wins); returns False if too late."""
        rec = self._records.get(query_id)
        if rec is None or rec.status != PENDING:
            return False
        rec.status = SUCCESS
        rec.end_time = time
        rec.holder = holder
        rec.hops = hops
        self.unresolved -= 1
        if self._watchers:
            self._notify(query_id, rec)
        return True

    def fail(self, query_id: int, time: float) -> bool:
        """Mark failure (lookup timer expired with no answer)."""
        rec = self._records.get(query_id)
        if rec is None or rec.status != PENDING:
            return False
        rec.status = FAILED
        rec.end_time = time
        self.unresolved -= 1
        if self._watchers:
            self._notify(query_id, rec)
        return True

    # ------------------------------------------------------------------
    def watch(self, query_id: int, callback: Callable[[QueryRecord], None]) -> bool:
        """Call ``callback(record)`` the moment this lookup completes.

        If the lookup already completed (or was answered synchronously
        from the local database), the callback fires immediately.
        Returns False for an unknown/retired query id.  Callbacks run
        inside succeed()/fail() -- in the live runtime that is the
        asyncio event loop thread, so setting a Future result directly
        is safe.
        """
        rec = self._records.get(query_id)
        if rec is None:
            return False
        if rec.status != PENDING:
            callback(rec)
            return True
        self._watchers.setdefault(query_id, []).append(callback)
        return True

    def unwatch(self, query_id: int) -> None:
        """Drop every watcher for a query id (waiter gave up/cancelled)."""
        self._watchers.pop(query_id, None)

    def _notify(self, query_id: int, rec: QueryRecord) -> None:
        callbacks = self._watchers.pop(query_id, None)
        if callbacks:
            for callback in callbacks:
                callback(rec)

    def note_reflood(self, query_id: int) -> None:
        rec = self._records.get(query_id)
        if rec is not None:
            rec.refloods += 1

    def note_bypass(self, query_id: int) -> None:
        rec = self._records.get(query_id)
        if rec is not None:
            rec.via_bypass = True

    # ------------------------------------------------------------------
    def records(self) -> List[QueryRecord]:
        return list(self._records.values())

    def reset(self) -> None:
        """Drop all records (keeps the id counter monotone)."""
        self._records.clear()
        self._base = self._next_id
        self._contacts.clear()
        self._duplicates.clear()
        self._watchers.clear()
        self.unresolved = 0

    def stats(self) -> QueryStats:
        """Aggregate the paper's metrics over all finished lookups.

        Single pass over the records; contact totals come straight from
        the flat counter arrays.
        """
        total = len(self._records)
        successes = failures = pending = local = 0
        latencies: List[float] = []
        for r in self._records.values():
            status = r.status
            if status == SUCCESS:
                successes += 1
                latencies.append(r.end_time - r.start_time)
            elif status == FAILED:
                failures += 1
            else:
                pending += 1
            if r.local:
                local += 1
        finished = successes + failures
        connum = sum(self._contacts)
        duplicates = sum(self._duplicates)
        if latencies:
            arr = np.array(latencies, dtype=float)
            mean_latency = float(arr.mean())
            median_latency = float(np.median(arr))
            p95_latency = float(np.percentile(arr, 95))
        else:
            mean_latency = median_latency = p95_latency = float("nan")
        return QueryStats(
            total=total,
            successes=successes,
            failures=failures,
            pending=pending,
            failure_ratio=(failures / finished) if finished else 0.0,
            mean_latency=mean_latency,
            median_latency=median_latency,
            p95_latency=p95_latency,
            connum=connum,
            mean_contacts_per_lookup=(connum / total) if total else 0.0,
            duplicate_contacts=duplicates,
            local_fraction=(local / total) if total else 0.0,
        )
