"""Lookup bookkeeping: latency, failure ratio, and *connum*.

The paper's evaluation metrics (Section 6) are all per-lookup
quantities:

* **lookup latency** -- "time difference between the time when the peer
  issues the data lookup request and the time when the peer receives
  the data", successful lookups only;
* **lookup failure ratio** -- failed lookups / total lookups, where a
  failure is an expired lookup timer;
* **connum** -- "the number of peers all the data lookup requests
  contact during the simulation".

:class:`QueryRegistry` is a measurement-only shared object: every peer
that receives a lookup-related message calls :meth:`contact`, origins
call :meth:`start`/:meth:`succeed`/:meth:`fail`.  It deliberately sits
outside the message plane (the real system would not have it; NS2
experiments use the same trick via its trace files).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["QueryRecord", "QueryRegistry", "QueryStats"]

PENDING = "pending"
SUCCESS = "success"
FAILED = "failed"


@dataclass
class QueryRecord:
    """Lifecycle of one lookup operation."""

    query_id: int
    origin: int
    key: str
    d_id: int
    start_time: float
    local: bool  # did the d_id fall in the origin's own s-network?
    status: str = PENDING
    end_time: float = float("nan")
    contacts: int = 0
    duplicate_contacts: int = 0
    holder: int = -1
    refloods: int = 0
    via_bypass: bool = False
    hops: int = 0  # overlay hops travelled by the winning answer path

    @property
    def latency(self) -> float:
        """Wall-clock (simulated) latency; NaN while pending/failed."""
        if self.status != SUCCESS:
            return float("nan")
        return self.end_time - self.start_time


@dataclass(frozen=True)
class QueryStats:
    """Aggregates over a set of completed lookups (paper's metrics)."""

    total: int
    successes: int
    failures: int
    pending: int
    failure_ratio: float
    mean_latency: float
    median_latency: float
    p95_latency: float
    connum: int
    mean_contacts_per_lookup: float
    duplicate_contacts: int
    local_fraction: float

    def __str__(self) -> str:
        return (
            f"lookups={self.total} fail_ratio={self.failure_ratio:.4f} "
            f"mean_latency={self.mean_latency:.1f}ms connum={self.connum}"
        )


class QueryRegistry:
    """Tracks every lookup in flight and aggregates the paper's metrics."""

    def __init__(self) -> None:
        self._records: Dict[int, QueryRecord] = {}
        self._next_id = 0
        self.unresolved = 0

    # ------------------------------------------------------------------
    def start(
        self, origin: int, key: str, d_id: int, time: float, local: bool
    ) -> QueryRecord:
        """Register a new lookup; returns its record (with fresh id)."""
        qid = self._next_id
        self._next_id += 1
        rec = QueryRecord(
            query_id=qid, origin=origin, key=key, d_id=d_id,
            start_time=time, local=local,
        )
        self._records[qid] = rec
        self.unresolved += 1
        return rec

    def get(self, query_id: int) -> Optional[QueryRecord]:
        return self._records.get(query_id)

    def contact(self, query_id: int, duplicate: bool = False) -> None:
        """One more peer was contacted on behalf of this lookup.

        Counted regardless of the lookup's current status: flood packets
        still in flight after the answer arrived consumed bandwidth,
        which is exactly what connum approximates.
        """
        rec = self._records.get(query_id)
        if rec is None:
            return
        if duplicate:
            rec.duplicate_contacts += 1
        else:
            rec.contacts += 1

    def succeed(self, query_id: int, time: float, holder: int, hops: int = 0) -> bool:
        """Mark success (first answer wins); returns False if too late."""
        rec = self._records.get(query_id)
        if rec is None or rec.status != PENDING:
            return False
        rec.status = SUCCESS
        rec.end_time = time
        rec.holder = holder
        rec.hops = hops
        self.unresolved -= 1
        return True

    def fail(self, query_id: int, time: float) -> bool:
        """Mark failure (lookup timer expired with no answer)."""
        rec = self._records.get(query_id)
        if rec is None or rec.status != PENDING:
            return False
        rec.status = FAILED
        rec.end_time = time
        self.unresolved -= 1
        return True

    def note_reflood(self, query_id: int) -> None:
        rec = self._records.get(query_id)
        if rec is not None:
            rec.refloods += 1

    def note_bypass(self, query_id: int) -> None:
        rec = self._records.get(query_id)
        if rec is not None:
            rec.via_bypass = True

    # ------------------------------------------------------------------
    def records(self) -> List[QueryRecord]:
        return list(self._records.values())

    def reset(self) -> None:
        """Drop all records (keeps the id counter monotone)."""
        self._records.clear()
        self.unresolved = 0

    def stats(self) -> QueryStats:
        """Aggregate the paper's metrics over all finished lookups."""
        recs = list(self._records.values())
        total = len(recs)
        successes = [r for r in recs if r.status == SUCCESS]
        failures = sum(1 for r in recs if r.status == FAILED)
        pending = sum(1 for r in recs if r.status == PENDING)
        finished = len(successes) + failures
        latencies = np.array([r.latency for r in successes], dtype=float)
        connum = sum(r.contacts for r in recs)
        duplicates = sum(r.duplicate_contacts for r in recs)
        local = sum(1 for r in recs if r.local)
        return QueryStats(
            total=total,
            successes=len(successes),
            failures=failures,
            pending=pending,
            failure_ratio=(failures / finished) if finished else 0.0,
            mean_latency=float(latencies.mean()) if latencies.size else float("nan"),
            median_latency=float(np.median(latencies)) if latencies.size else float("nan"),
            p95_latency=float(np.percentile(latencies, 95)) if latencies.size else float("nan"),
            connum=connum,
            mean_contacts_per_lookup=(connum / total) if total else 0.0,
            duplicate_contacts=duplicates,
            local_fraction=(local / total) if total else 0.0,
        )
