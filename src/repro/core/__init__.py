"""The hybrid peer-to-peer system (the paper's contribution).

Public surface:

* :class:`~repro.core.config.HybridConfig` -- every tunable (p_s, delta,
  TTL, placement scheme, enhancements);
* :class:`~repro.core.hybrid.HybridSystem` -- build and drive a full
  deployment;
* :class:`~repro.core.hybridpeer.HybridPeer` -- a single peer (role "t"
  or "s");
* :class:`~repro.core.server.BootstrapServer` -- the well-known server;
* :class:`~repro.core.lookup.QueryRegistry` / ``QueryStats`` -- the
  evaluation metrics (latency, failure ratio, connum).
"""

from .config import (
    ASSIGN_BALANCED,
    ASSIGN_BINNED,
    ASSIGN_INTEREST,
    ASSIGN_RANDOM,
    CONNECT_DEGREE,
    CONNECT_LINK_USAGE,
    CONNECT_STAR,
    PLACEMENT_DIRECT,
    PLACEMENT_SPREAD,
    ROUTING_FINGER,
    ROUTING_LINEAR,
    SNETWORK_BITTORRENT,
    SNETWORK_GNUTELLA,
    HybridConfig,
)
from .datastore import DataItem, DataStore
from .hybrid import HybridSystem
from .hybridpeer import HybridPeer
from .lookup import QueryRecord, QueryRegistry, QueryStats
from .server import BootstrapServer, RingDirectory

__all__ = [
    "HybridConfig",
    "HybridSystem",
    "HybridPeer",
    "BootstrapServer",
    "RingDirectory",
    "DataItem",
    "DataStore",
    "QueryRecord",
    "QueryRegistry",
    "QueryStats",
    "PLACEMENT_DIRECT",
    "PLACEMENT_SPREAD",
    "ROUTING_LINEAR",
    "ROUTING_FINGER",
    "CONNECT_STAR",
    "CONNECT_DEGREE",
    "CONNECT_LINK_USAGE",
    "ASSIGN_BALANCED",
    "ASSIGN_RANDOM",
    "ASSIGN_INTEREST",
    "ASSIGN_BINNED",
    "SNETWORK_GNUTELLA",
    "SNETWORK_BITTORRENT",
]
