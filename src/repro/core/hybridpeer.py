"""The hybrid peer: one class, two roles.

A :class:`HybridPeer` is an s-peer or a t-peer -- and may change role
over its lifetime (promotion on t-peer leave/crash), which is exactly
why the paper's design keeps the t-network cheap to maintain.  All
protocol behaviour lives in the role mixins:

* :class:`~repro.core.tnetwork.TNetworkMixin` -- ring membership/routing,
* :class:`~repro.core.snetwork.SNetworkMixin` -- tree membership,
* :class:`~repro.core.dataplane.DataPlaneMixin` -- store/lookup,
* :class:`~repro.core.failures.LivenessMixin` -- heartbeats and crash
  recovery,
* :class:`~repro.enhance.bypass.BypassMixin` -- Section 5.4 shortcuts.

This module owns the *state* those mixins operate on, the join entry
point (contact the server, then run the t-join ring walk or the s-join
tree walk), and the public ``leave`` / ``crash`` lifecycle.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from ..enhance.bypass import BypassLink, BypassMixin
from ..enhance.caching import CacheMixin, LruCache
from ..overlay.idspace import IdSpace
from ..overlay.messages import (
    LoadTransfer,
    Message,
    ServerJoin,
    ServerJoinReply,
    ServerUpdate,
    SJoinRequest,
    TJoinRequest,
    TLeaveToPre,
)
from ..overlay.peer import BasePeer
from ..overlay.transport import Transport
from ..replica import ReplicationMixin
from ..swarm import SwarmMixin
from ..sim.engine import Engine
from ..sim.timers import PeriodicTimer, Timer
from ..sim.trace import TraceBus
from .config import HybridConfig
from .datastore import DataStore
from .dataplane import DataPlaneMixin
from .failures import LivenessMixin
from .lookup import QueryRegistry
from .search import PartialSearch, SearchMixin
from .snetwork import SNetworkMixin
from .tnetwork import TNetworkMixin

__all__ = ["HybridPeer"]


class HybridPeer(
    TNetworkMixin,
    SNetworkMixin,
    DataPlaneMixin,
    SearchMixin,
    LivenessMixin,
    ReplicationMixin,
    SwarmMixin,
    BypassMixin,
    CacheMixin,
    BasePeer,
):
    """A peer of the hybrid system (role "t" or "s")."""

    def __init__(
        self,
        address: int,
        host: int,
        engine: Engine,
        transport: Transport,
        idspace: IdSpace,
        config: HybridConfig,
        rng: np.random.Generator,
        queries: QueryRegistry,
        capacity: float = 1.0,
        interest: Optional[str] = None,
        coordinate: Optional[Tuple[int, ...]] = None,
        trace: Optional[TraceBus] = None,
    ) -> None:
        super().__init__(address, host, engine, transport, idspace, trace)
        self.config = config
        self.rng = rng
        self.queries = queries
        self.capacity = capacity
        self.interest = interest
        self.coordinate = coordinate
        self.server_address = config.server_address

        # --- lifecycle -------------------------------------------------
        self.role: str = "new"
        self.joined = False
        self.join_request_time = float("nan")
        self.join_latency = float("nan")

        # --- ring state (role "t") --------------------------------------
        self.p_id = -1
        self.predecessor = -1
        self.predecessor_pid = -1
        self.successor = -1
        self.successor_pid = -1
        self.fingers: List[Tuple[int, int]] = []
        self.joining = False
        self.pending_join: Optional[Tuple[int, int]] = None
        self.join_queue: Deque[TJoinRequest] = deque()
        self.leaving = False
        self.want_leave = False
        self.deferred_leaves: List[TLeaveToPre] = []
        self.handoff_target = -1
        self._handoff_timer: Optional[Timer] = None
        # Departure-time load dump (acked + retried; see _depart_with_load).
        self._dump_candidates: List[int] = []
        self._dump_pending_id = -1
        self._dump_next_id = 0
        self._dump_timer: Optional[Timer] = None
        self._dump_reason = "leave"

        # --- tree state --------------------------------------------------
        self.t_peer = -1
        self.cp = -1
        self.children: Set[int] = set()
        self.segment_lo = -1
        self.extra_links: Set[int] = set()  # mesh ablation only
        self._rejoin_timer: Optional[Timer] = None

        # --- liveness ------------------------------------------------------
        self.neighbor_timers: Dict[int, Timer] = {}
        self.hello_timer: Optional[PeriodicTimer] = None
        self.ack_suppress_until = float("-inf")
        # Per-neighbor time of the last ack/HELLO we sent (bandwidth
        # optimisation: a fresh ack cancels that neighbor's next HELLO).
        self._last_liveness_sent: Dict[int, float] = {}

        # --- data plane -----------------------------------------------------
        self.database = DataStore(idspace)
        # --- segment replication (repro.replica; inert at k == 1) -----------
        self._init_replica_state(idspace)
        # --- swarm bulk transfer (repro.swarm; inert unless enabled) --------
        self._init_swarm_state()
        self.seen_queries: Set[Tuple[int, int]] = set()
        self.pending_lookups: Dict[int, object] = {}
        self.pending_searches: Dict[int, PartialSearch] = {}
        self.bt_index: Dict[str, int] = {}

        # --- bypass links (Section 5.4) ---------------------------------------
        self.bypass: Dict[int, BypassLink] = {}

        # --- popular-data cache (future work, Section 7) ------------------------
        self.cache: Optional[LruCache] = (
            LruCache(config.cache_capacity, config.cache_ttl)
            if config.cache_enabled
            else None
        )
        self.answers_served = 0  # queries this peer answered (db or cache)

    # ------------------------------------------------------------------
    # Join
    # ------------------------------------------------------------------
    def begin_join(self) -> None:
        """Contact the well-known server (Section 3.2)."""
        self.join_request_time = self.engine.now
        self.send(
            self.server_address,
            ServerJoin(
                address=self.address,
                capacity=self.capacity,
                interest=self.interest,
                coordinate=self.coordinate,
            ),
        )

    def on_ServerJoinReply(self, msg: ServerJoinReply) -> None:
        if msg.role == "t":
            if msg.entry_peer == -1:
                self._bootstrap_ring(msg.p_id)
            else:
                self.send(
                    msg.entry_peer,
                    TJoinRequest(new_address=self.address, new_pid=msg.p_id),
                )
        else:
            self.role = "s"
            self.t_peer = msg.entry_peer
            self.send(msg.entry_peer, SJoinRequest(new_address=self.address))
            self._arm_rejoin_retry()

    def _bootstrap_ring(self, p_id: int) -> None:
        """First peer of the system: a single-member ring."""
        self.role = "t"
        self.p_id = p_id
        self.t_peer = self.address
        self.predecessor, self.predecessor_pid = self.address, p_id
        self.successor, self.successor_pid = self.address, p_id
        self.segment_lo = p_id
        self._complete_join()
        self.send(
            self.server_address,
            ServerUpdate(kind="t_join", address=self.address, p_id=p_id),
        )

    def _complete_join(self) -> None:
        self.joined = True
        self.join_latency = self.engine.now - self.join_request_time
        self.emit("join.complete", role=self.role, latency=self.join_latency)
        self.start_heartbeats()
        self.start_replica_sync()

    # ------------------------------------------------------------------
    # Leave / crash
    # ------------------------------------------------------------------
    def leave(self) -> None:
        """Graceful departure (Table 1 / Section 3.2.2)."""
        if not self.alive or not self.joined:
            return
        if self.role == "t":
            self.leave_t()
        else:
            self.leave_s()

    @property
    def departing(self) -> bool:
        """True while a departure-time load dump is awaiting its ack."""
        return self._dump_pending_id >= 0

    def _depart_with_load(self, candidates: List[int], reason: str) -> None:
        """Hand the database to the first candidate that acknowledges,
        then depart.

        Fire-and-forget dumps silently destroy data when the recipient
        departs concurrently (the message is dropped); the ack + retry
        loop walks the candidate list until someone confirms receipt.
        If everyone is gone the data is genuinely lost -- exactly as it
        would be in a real deployment.
        """
        if len(self.database) == 0:
            self._depart()
            return
        # Last resort: the bootstrap server relays the dump to whoever
        # currently owns the items' segment (every cached pointer may be
        # stale after heavy concurrent churn).
        self._dump_candidates = [
            c for c in candidates if c not in (-1, self.address)
        ] + [self.server_address]
        self._dump_reason = reason
        self._try_dump()

    def _try_dump(self) -> None:
        while self._dump_candidates:
            target = self._dump_candidates.pop(0)
            # A failed connect is immediately visible to the sender.
            if not self.transport.is_reachable(target):
                continue
            tid = self._dump_next_id
            self._dump_next_id += 1
            self._dump_pending_id = tid
            self.send(
                target,
                LoadTransfer(
                    items=tuple((i.key, i.value, i.d_id) for i in self.database),
                    reason=self._dump_reason,
                    transfer_id=tid,
                    origin=self.address,
                ),
            )
            if self._dump_timer is None:
                self._dump_timer = Timer(
                    self.engine, self.config.join_retry_timeout, self._dump_timeout
                )
            self._dump_timer.start()
            return
        self._dump_pending_id = -1
        self.emit("load.lost", items=len(self.database))
        self._depart()

    def _dump_timeout(self) -> None:
        if self.alive and self.departing:
            self._dump_pending_id = -1
            self._try_dump()

    def on_LoadTransferAck(self, msg) -> None:
        if msg.transfer_id == self._dump_pending_id:
            self._dump_pending_id = -1
            if self._dump_timer is not None:
                self._dump_timer.cancel()
            self._depart()

    def _depart(self) -> None:
        """Final exit after all departure messages went out."""
        self.stop_liveness()
        self.replica_shutdown()
        self.swarm_shutdown()
        self._cancel_rejoin_retry()
        if self._handoff_timer is not None:
            self._handoff_timer.cancel()
        if self._dump_timer is not None:
            self._dump_timer.cancel()
        for pending in list(self.pending_lookups.values()):
            pending.timer.cancel()
        self.pending_lookups.clear()
        self.alive = False
        self.emit("peer.departed", role=self.role)

    def crash(self) -> None:
        """Abrupt failure: no notifications, all local state frozen."""
        self.stop_liveness()
        self.replica_shutdown()
        self.swarm_shutdown()
        self._cancel_rejoin_retry()
        if self._handoff_timer is not None:
            self._handoff_timer.cancel()
        for pending in list(self.pending_lookups.values()):
            pending.timer.cancel()
        self.pending_lookups.clear()
        super().crash()
        self.emit("peer.crashed", role=self.role)

    # ------------------------------------------------------------------
    def unhandled(self, msg: Message) -> None:
        raise NotImplementedError(
            f"peer {self.address} (role {self.role}) has no handler for "
            f"{type(msg).__name__}"
        )
