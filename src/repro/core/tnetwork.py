"""t-network behaviour: the structured ring (Sections 3.2.1, 3.3).

:class:`TNetworkMixin` implements, on top of the shared peer state in
:class:`~repro.core.hybridpeer.HybridPeer`:

* ring forwarding (linear, as in the paper's simulation, or via finger
  tables as the Section 4 analysis assumes);
* the **join triangle** -- ``pre -> new -> suc -> pre`` with the
  ``joining`` mutex and request queue of Section 3.3, including ``p_id``
  conflict resolution by midpoint (Table 1's ``check``);
* the **leave triangle** -- ``leaver -> pre -> suc -> leaver`` with the
  ``leaving`` mutex, used only when the leaver's s-network is empty;
* **role handoff** -- the hybrid system's headline maintenance saving:
  a leaving t-peer promotes one of its s-peers, so t-peer positions
  never move and finger tables need substitution, not recomputation;
* load transfer on join (Table 1's ``loadtransfer``) and load dump on
  leave (``loaddump``).
"""

from __future__ import annotations

from typing import List, Tuple

from ..overlay.messages import (
    CollectLoad,
    FingerSubstitute,
    RingNotify,
    SegmentGrow,
    LoadTransfer,
    PromoteToTPeer,
    RingRepairReply,
    RoleHandoff,
    RoleHandoffAck,
    ServerUpdate,
    TJoinAck,
    TJoinNotifySuccessor,
    TJoinRequest,
    TJoinSetNeighbors,
    TLeaveAck,
    TLeaveToPre,
    TLeaveToSuc,
    TPeerUpdate,
)
from .config import ROUTING_FINGER

__all__ = ["TNetworkMixin"]


class TNetworkMixin:
    """Ring maintenance and routing for t-peers."""

    # ------------------------------------------------------------------
    # Ring routing
    # ------------------------------------------------------------------
    def owns(self, d_id: int) -> bool:
        """Does this t-peer's segment ``(pred_pid, p_id]`` cover d_id?

        Inlined ``IdSpace.owner_segment_contains``: this predicate runs
        once per ring hop, which is most delivered messages.
        """
        mask = self.idspace._mask
        pred = self.predecessor_pid
        span = (self.p_id - pred) & mask
        return span == 0 or 0 < ((d_id - pred) & mask) <= span

    def closest_preceding(self, target: int) -> int:
        """Finger-table hop: live finger closest before ``target``.

        Falls back to the successor, which alone guarantees progress
        (Chord's invariant).
        """
        best_addr = self.successor
        best_dist = self.idspace.distance_cw(self.p_id, self.successor_pid)
        target_dist = self.idspace.distance_cw(self.p_id, target)
        for f_pid, f_addr in self.fingers:
            d = self.idspace.distance_cw(self.p_id, f_pid)
            if 0 < d < target_dist and d > best_dist:
                best_dist = d
                best_addr = f_addr
        return best_addr

    def ring_next_hop(self, target: int) -> int:
        """Next ring hop toward the owner of ``target``."""
        if self.config.ring_routing == ROUTING_FINGER and self.fingers:
            return self.closest_preceding(target)
        return self.successor

    def set_fingers(self, entries: List[Tuple[int, int]]) -> None:
        """Install a finger table as (p_id, address) pairs.

        The paper inherits Chord's background stabilization protocol
        without restating it; the experiment harness stands in for that
        protocol by installing consistent fingers after topology
        changes, while handoffs keep them patched via
        :class:`FingerSubstitute` exactly as Section 3.2.1 describes.
        """
        self.fingers = list(entries)

    # ------------------------------------------------------------------
    # Join triangle (Fig. 2 left)
    # ------------------------------------------------------------------
    def _insertion_here(self, pid: int) -> bool:
        return self.idspace.in_interval(
            pid, self.p_id, self.successor_pid, closed_right=True
        )

    def on_TJoinRequest(self, msg: TJoinRequest) -> None:
        if self.role != "t":
            # Stale routing (e.g. arrived just after a handoff): pass to
            # the current t-peer of this s-network.
            self.send(self.t_peer, msg)
            return
        if self.leaving:
            # "if the join request queue is not empty, the peer should
            # process the join request first" -- hold it; the queue is
            # flushed to whoever takes over this ring position.
            self.join_queue.append(msg)
            return
        if not self._insertion_here(msg.new_pid):
            self.send(self.ring_next_hop(msg.new_pid), msg)
            return
        pid = msg.new_pid
        if pid == self.p_id or pid == self.successor_pid:
            # Table 1's check(): on conflict assign the midpoint of the
            # (pre, suc) arc.
            pid = self.idspace.midpoint_cw(self.p_id, self.successor_pid)
            if pid == self.p_id or pid == self.successor_pid:
                self.emit("join.abort", new=msg.new_address, reason="id space exhausted")
                return
        if self.joining:
            self.join_queue.append(msg)
            return
        self.joining = True
        self.pending_join = (msg.new_address, pid)
        self.send(
            msg.new_address,
            TJoinSetNeighbors(
                pre=self.address,
                pre_pid=self.p_id,
                suc=self.successor,
                suc_pid=self.successor_pid,
                assigned_pid=pid,
            ),
        )

    def on_TJoinSetNeighbors(self, msg: TJoinSetNeighbors) -> None:
        """New peer's side of the triangle: adopt pointers, notify suc."""
        self.role = "t"
        self.p_id = msg.assigned_pid
        self.t_peer = self.address
        self.predecessor, self.predecessor_pid = msg.pre, msg.pre_pid
        self.successor, self.successor_pid = msg.suc, msg.suc_pid
        self.segment_lo = msg.pre_pid
        self.send(
            msg.suc,
            TJoinNotifySuccessor(
                new_address=self.address, new_pid=self.p_id, pre=msg.pre
            ),
        )

    def on_TJoinNotifySuccessor(self, msg: TJoinNotifySuccessor) -> None:
        """Successor's side: adopt the new predecessor, transfer load."""
        old_pred_pid = self.predecessor_pid
        self.predecessor = msg.new_address
        self.predecessor_pid = msg.new_pid
        self.segment_lo = msg.new_pid
        self._transfer_segment(old_pred_pid, msg.new_pid, msg.new_address)
        self.send(msg.pre, TJoinAck(new_address=msg.new_address))
        if msg.new_address != msg.pre:
            self.send(msg.new_address, TJoinAck(new_address=msg.new_address))
        # Reconcile, don't just add: the joiner displaced our previous
        # predecessor, whose timer would otherwise go stale and fire a
        # false crash.detected once its resets (acks/HELLOs) stop.
        self._refresh_liveness()

    def on_TJoinAck(self, msg: TJoinAck) -> None:
        if self.pending_join is not None and self.pending_join[0] == msg.new_address:
            # pre's side: commit the successor pointer, release the mutex.
            new_addr, new_pid = self.pending_join
            self.successor, self.successor_pid = new_addr, new_pid
            self.pending_join = None
            self.joining = False
            self._refresh_liveness()  # also unwatches the displaced successor
            self._drain_control_queues()
        if msg.new_address == self.address and not self.joined:
            # the new peer's side: it is now inserted in the ring.
            self._complete_join()
            self.send(
                self.server_address,
                ServerUpdate(kind="t_join", address=self.address, p_id=self.p_id),
            )
            self.watch_neighbor(self.predecessor)
            self.watch_neighbor(self.successor)

    def _drain_control_queues(self) -> None:
        """Process queued joins, then deferred leaves, then own leave."""
        while self.join_queue and not self.joining and not self.leaving:
            self.on_TJoinRequest(self.join_queue.popleft())
        if not self.joining:
            while self.deferred_leaves and not self.joining:
                self.on_TLeaveToPre(self.deferred_leaves.pop(0))
            if self.want_leave and not self.join_queue and not self.joining:
                self.want_leave = False
                self.leave()

    def _transfer_segment(self, lo: int, hi: int, target: int) -> None:
        """Table 1 ``loadtransfer``: hand segment (lo, hi] to ``target``.

        Every peer of this s-network participates, so the instruction is
        flooded down the tree via :class:`CollectLoad`.
        """
        items = self.database.extract_segment(lo, hi)
        if items:
            self.send(
                target,
                LoadTransfer(
                    items=tuple((i.key, i.value, i.d_id) for i in items),
                    reason="join",
                ),
            )
        collect = CollectLoad(new_address=target, new_pid=hi, pred_pid=lo)
        self.send_many(self.children, collect)

    def on_CollectLoad(self, msg: CollectLoad) -> None:
        """s-network member's part of a load transfer."""
        # The segment of this s-network shrank: its lower bound is now
        # the new t-peer's p_id.
        self.segment_lo = msg.new_pid
        items = self.database.extract_segment(msg.pred_pid, msg.new_pid)
        if items:
            self.send(
                msg.new_address,
                LoadTransfer(
                    items=tuple((i.key, i.value, i.d_id) for i in items),
                    reason="join",
                ),
            )
        self.send_many([c for c in self.children if c != msg.sender], msg)

    def on_LoadTransfer(self, msg: LoadTransfer) -> None:
        if msg.transfer_id >= 0 and self.departing:
            # We are mid-departure ourselves: items inserted now would
            # miss our own (already snapshotted) dump.  Stay silent so
            # the sender's retry finds a steadier recipient.
            return
        for key, value, d_id in msg.items:
            self.database.insert(key, value, d_id)
        if msg.transfer_id >= 0:
            from ..overlay.messages import LoadTransferAck

            ack_to = msg.origin if msg.origin != -1 else msg.sender
            self.send(ack_to, LoadTransferAck(transfer_id=msg.transfer_id))

    # ------------------------------------------------------------------
    # Leave: handoff when possible, triangle otherwise (Fig. 2 right)
    # ------------------------------------------------------------------
    def leave_t(self) -> None:
        """Voluntary departure of a t-peer (Table 1 ``n.leave()``)."""
        if self.joining or self.join_queue:
            # "Now peer pre will not accept any leave requests including
            # that from itself."
            self.want_leave = True
            return
        if self.leaving:
            return
        self.leaving = True
        if self.successor == self.address:
            # Last peer of the system: nothing to hand over.
            self.send(
                self.server_address,
                ServerUpdate(kind="t_leave", address=self.address, p_id=self.p_id),
            )
            self._depart()
            return
        if self.children:
            self._handoff_role()
        else:
            self.send(
                self.predecessor,
                TLeaveToPre(
                    leaver=self.address,
                    suc=self.successor,
                    suc_pid=self.successor_pid,
                ),
            )
            self._arm_handoff_retry()  # retry if pre never answers

    def _handoff_role(self) -> None:
        """Promote a random s-peer of our own s-network (Table 1).

        Items are *snapshotted*, not removed: if the chosen target dies
        (or leaves) before acknowledging, the retry timer re-runs the
        handoff with the data intact.  Our copy departs with us once
        the ack arrives.
        """
        candidates = sorted(self.children)
        target = candidates[int(self.rng.integers(0, len(candidates)))]
        self.handoff_target = target
        self.send(
            target,
            RoleHandoff(
                p_id=self.p_id,
                predecessor=self.predecessor,
                predecessor_pid=self.predecessor_pid,
                successor=self.successor,
                successor_pid=self.successor_pid,
                fingers=tuple(self.fingers),
                items=tuple((i.key, i.value, i.d_id) for i in self.database),
                s_neighbors=tuple(a for a in self.children if a != target),
            ),
        )
        self._arm_handoff_retry()

    def _arm_handoff_retry(self) -> None:
        from ..sim.timers import Timer

        if self._handoff_timer is None:
            self._handoff_timer = Timer(
                self.engine, self.config.join_retry_timeout, self._handoff_retry
            )
        self._handoff_timer.start()

    def _handoff_retry(self) -> None:
        """No ack: the target died or left mid-handoff.  Re-run the
        leave with whoever is still around (triangle if nobody is)."""
        if not self.alive or not self.leaving:
            return
        self.children.discard(self.handoff_target)
        self.handoff_target = -1
        self.emit("t.handoff.retry")
        if self.children:
            self._handoff_role()
        else:
            self.send(
                self.predecessor,
                TLeaveToPre(
                    leaver=self.address,
                    suc=self.successor,
                    suc_pid=self.successor_pid,
                ),
            )
            self._arm_handoff_retry()  # the triangle can wedge the same way

    def on_RoleHandoff(self, msg: RoleHandoff) -> None:
        """Chosen s-peer becomes the t-peer at the same ring position."""
        old_t = msg.sender
        self.role = "t"
        self.p_id = msg.p_id
        self.t_peer = self.address
        self.cp = -1
        if msg.predecessor == old_t:  # old peer was the only ring member
            self.predecessor, self.predecessor_pid = self.address, msg.p_id
            self.successor, self.successor_pid = self.address, msg.p_id
        else:
            self.predecessor, self.predecessor_pid = msg.predecessor, msg.predecessor_pid
            self.successor, self.successor_pid = msg.successor, msg.successor_pid
        self.segment_lo = self.predecessor_pid
        self.fingers = list(msg.fingers)
        self.children.update(msg.s_neighbors)
        for key, value, d_id in msg.items:
            self.database.insert(key, value, d_id)
        self.send(old_t, RoleHandoffAck())
        self.send(
            self.server_address,
            ServerUpdate(
                kind="t_handoff", address=self.address, p_id=self.p_id, extra=old_t
            ),
        )
        self._announce_substitution(old_t)
        self._refresh_liveness()
        # The leaver's replica store (copies for predecessor segments)
        # departs with it; our anti-entropy probes from those owners
        # refill ours.  Our own segment's holders are unchanged.
        self.start_replica_sync()
        self.emit("t.handoff", old=old_t, p_id=self.p_id)

    def _announce_substitution(self, old_t: int) -> None:
        """Patch ring pointers (direct) and fingers (circulated)."""
        if self.predecessor != self.address:
            self.send(
                self.predecessor,
                FingerSubstitute(old=old_t, new=self.address, origin=self.address),
            )
        if self.successor not in (self.address, self.predecessor):
            self.send(
                self.successor,
                FingerSubstitute(old=old_t, new=self.address, origin=self.address),
            )
        if self.config.ring_routing == ROUTING_FINGER and self.successor != self.address:
            self.send(
                self.successor,
                FingerSubstitute(
                    old=old_t, new=self.address, origin=self.address, circulate=True
                ),
            )
        update = TPeerUpdate(new_t=self.address, old_t=old_t)
        self.send_many(self.children, update)

    def on_RoleHandoffAck(self, msg: RoleHandoffAck) -> None:
        """Old t-peer: hand over queued control work, then depart."""
        if self._handoff_timer is not None:
            self._handoff_timer.cancel()
        new_t = msg.sender
        for queued in self.join_queue:
            self.send(new_t, queued)
        self.join_queue.clear()
        for deferred in self.deferred_leaves:
            self.send(new_t, deferred)
        self.deferred_leaves.clear()
        self._depart()

    def on_FingerSubstitute(self, msg: FingerSubstitute) -> None:
        """Swap ``old`` for ``new`` in our pointers; forward if circulating."""
        if self.role != "t":
            return
        if self.successor == msg.old:
            self.successor = msg.new
        if self.predecessor == msg.old:
            self.predecessor = msg.new
        self.fingers = [
            (pid, msg.new if addr == msg.old else addr) for pid, addr in self.fingers
        ]
        self.unwatch_neighbor(msg.old)
        if msg.old in (self.predecessor, self.successor) or msg.new in (
            self.predecessor,
            self.successor,
        ):
            self.watch_neighbor(msg.new)
        if msg.circulate and self.successor not in (msg.origin, self.address):
            self.send(self.successor, msg)

    def on_TLeaveToPre(self, msg: TLeaveToPre) -> None:
        """pre's side of the leave triangle."""
        if self.role != "t":
            self.send(self.t_peer, msg)
            return
        if self.joining or self.leaving:
            # "the peer will not accept any new join request ... and
            # leaving request": deferred until our own operation
            # commits (a departing pre forwards its deferred work to
            # the leaver's new predecessor).
            self.deferred_leaves.append(msg)
            return
        if msg.leaver != self.successor:
            # Topology moved under the leaver (a join slid in between):
            # route the request to the leaver's actual predecessor.
            self.send(self.successor, msg)
            return
        self.successor, self.successor_pid = msg.suc, msg.suc_pid
        self._refresh_liveness()  # also unwatches the leaver
        self.send(
            msg.suc,
            TLeaveToSuc(leaver=msg.leaver, pre=self.address, pre_pid=self.p_id),
        )

    def on_TLeaveToSuc(self, msg: TLeaveToSuc) -> None:
        """suc's side: verify the leaver is our predecessor, then ack."""
        if self.predecessor != msg.leaver:
            self.emit("t.leave.mismatch", leaver=msg.leaver, predecessor=self.predecessor)
            return
        old_lo = self.predecessor_pid
        self.predecessor, self.predecessor_pid = msg.pre, msg.pre_pid
        self.segment_lo = msg.pre_pid
        # The departed segment merges into ours; tell our s-network.
        grow = SegmentGrow(new_lo=msg.pre_pid)
        self.send_many(self.children, grow)
        self._refresh_liveness()  # also unwatches the leaver
        self.replica_absorb_segment(msg.pre_pid, old_lo, failover=False)
        self.send(msg.leaver, TLeaveAck())

    def on_TLeaveAck(self, msg: TLeaveAck) -> None:
        """Leaver's side: dump load to suc, update the world, depart."""
        if self._handoff_timer is not None:
            self._handoff_timer.cancel()
        if self.config.ring_routing == ROUTING_FINGER:
            self.send(
                self.successor,
                FingerSubstitute(
                    old=self.address,
                    new=self.successor,
                    origin=self.address,
                    circulate=True,
                ),
            )
        self.send(
            self.server_address,
            ServerUpdate(kind="t_leave", address=self.address, p_id=self.p_id),
        )
        for queued in self.join_queue:
            self.send(self.predecessor, queued)
        self.join_queue.clear()
        for deferred in self.deferred_leaves:
            self.send(self.predecessor, deferred)
        self.deferred_leaves.clear()
        # Table 1's loaddump, acked: successor first, predecessor as the
        # fallback recipient.
        self._depart_with_load([self.successor, self.predecessor], reason="leave")

    # ------------------------------------------------------------------
    # Crash recovery hooks (promotion and ring repair)
    # ------------------------------------------------------------------
    def on_PromoteToTPeer(self, msg: PromoteToTPeer) -> None:
        """Server elected us to replace our crashed t-peer."""
        if self.role == "t":
            return  # stale duplicate
        old_t = msg.crashed
        self.role = "t"
        self.p_id = msg.p_id
        self.t_peer = self.address
        self.cp = -1
        if msg.predecessor == self.address:
            self.predecessor, self.predecessor_pid = self.address, msg.p_id
        else:
            self.predecessor, self.predecessor_pid = msg.predecessor, msg.predecessor_pid
        if msg.successor == self.address:
            self.successor, self.successor_pid = self.address, msg.p_id
        else:
            self.successor, self.successor_pid = msg.successor, msg.successor_pid
        self.segment_lo = self.predecessor_pid
        self._announce_substitution(old_t)
        self._refresh_liveness()
        self.emit("t.promotion", crashed=old_t, p_id=self.p_id)
        # Our database starts empty at the crashed peer's position:
        # pull the segment from its surviving replica holders.
        self.replica_handle_promotion(old_t)

    def on_RingRepairReply(self, msg: RingRepairReply) -> None:
        """Adopt the server's authoritative ring pointers and assert
        ourselves to those neighbors (see :class:`RingNotify`)."""
        if self.role != "t":
            return
        old_lo = self.predecessor_pid
        old_suc = self.successor
        if msg.predecessor != self.address:
            self.predecessor, self.predecessor_pid = msg.predecessor, msg.predecessor_pid
            self.watch_neighbor(msg.predecessor)
            self.send(msg.predecessor, RingNotify(p_id=self.p_id, claim="suc"))
        if msg.successor != self.address:
            self.successor, self.successor_pid = msg.successor, msg.successor_pid
            self.watch_neighbor(msg.successor)
            self.send(msg.successor, RingNotify(p_id=self.p_id, claim="pred"))
        self.segment_lo = self.predecessor_pid
        if self.predecessor_pid != old_lo:
            # A crashed predecessor was excised: its segment is ours now
            # and our replica copies of it become primary.
            self.replica_absorb_segment(self.predecessor_pid, old_lo)
        elif self.successor != old_suc:
            self.replica_chain_changed()

    def on_RingNotify(self, msg: RingNotify) -> None:
        """A neighbor asserts its ring position (Chord's notify rule).

        Accept when the claimant sits at our recorded neighbor p_id
        (address substitution after a handoff) or strictly improves the
        pointer (a closer neighbor than the one we know).
        """
        if self.role != "t":
            return
        if msg.claim == "pred":
            if msg.p_id == self.predecessor_pid or self.idspace.in_interval(
                msg.p_id, self.predecessor_pid, self.p_id
            ):
                self.predecessor, self.predecessor_pid = msg.sender, msg.p_id
                self.segment_lo = msg.p_id
                self._refresh_liveness()  # also unwatches the old pointer
        elif msg.claim == "suc":
            if msg.p_id == self.successor_pid or self.idspace.in_interval(
                msg.p_id, self.p_id, self.successor_pid
            ):
                self.successor, self.successor_pid = msg.sender, msg.p_id
                self._refresh_liveness()  # also unwatches the old pointer

    def on_SegmentGrow(self, msg: SegmentGrow) -> None:
        """s-network member: widen the local ownership test, forward."""
        self.segment_lo = msg.new_lo
        self.send_many([c for c in self.children if c != msg.sender], msg)
