"""Bypass links between s-networks (Section 5.4).

Bypass links are soft shortcuts that divert data operations away from
the t-network.  The paper gives three addition rules, all implemented:

1. a bypass link may only be added while the peer's degree is below the
   threshold δ (tree links and bypass links share the budget here);
2. after peer *a* inserts a data item at peer *b* in a different
   s-network, link (a, b) is added -- implemented via
   :class:`~repro.overlay.messages.StoreAck`;
3. after peer *a* finds a data item at peer *b* in a different
   s-network, link (a, b) is added -- via the segment identity carried
   in :class:`~repro.overlay.messages.DataFound`.

Each link carries the *segment* of the remote s-network, so future
lookups whose ``d_id`` falls in that segment skip the ring entirely and
flood the remote network directly.  Links expire after
``bypass_lifetime`` of disuse; "transmitting a packet through the
bypass link will refresh the attached timer".

Implementation note: links are directional (the holder side adds its
own link when its reply/ack arrives back, symmetric by construction of
rules 2-3), and a lookup that travelled a *stale* bypass gets one free
retry through the authoritative t-network before it may be declared
failed (see :meth:`~repro.core.dataplane.DataPlaneMixin._lookup_expired`).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["BypassLink", "BypassMixin"]


class BypassLink:
    """One shortcut into a remote s-network's segment ``(lo, hi]``."""

    __slots__ = ("lo", "hi", "expires_at")

    def __init__(self, lo: int, hi: int, expires_at: float) -> None:
        self.lo = lo
        self.hi = hi
        self.expires_at = expires_at


class BypassMixin:
    """Bypass-link table management and lookup routing."""

    def add_bypass(self, addr: int, lo: int, hi: int) -> None:
        """Rules 1-3: add/refresh a shortcut to ``addr`` (segment (lo, hi])."""
        if not self.config.bypass_links:
            return
        if addr in (-1, self.address) or hi == self.p_id:
            return  # self or same s-network: the tree already covers it
        self._prune_bypass()
        expires = self.engine.now + self.config.bypass_lifetime
        link = self.bypass.get(addr)
        if link is not None:
            link.lo, link.hi, link.expires_at = lo, hi, expires
            return
        # Rule 1: respect the degree threshold.
        if self.tree_degree() + len(self.bypass) >= self.config.delta:
            return
        self.bypass[addr] = BypassLink(lo, hi, expires)
        self.emit("bypass.add", target=addr)

    def bypass_target_for(self, d_id: int) -> Optional[int]:
        """A live bypass neighbor whose segment covers ``d_id``, if any."""
        if not self.bypass:
            return None
        self._prune_bypass()
        for addr, link in self.bypass.items():
            if self.idspace.in_interval(d_id, link.lo, link.hi, closed_right=True):
                # Using the link refreshes its timer.
                link.expires_at = self.engine.now + self.config.bypass_lifetime
                return addr
        return None

    def drop_bypass(self, addr: int) -> None:
        """Remove a link (neighbor crashed or notified departure)."""
        self.bypass.pop(addr, None)

    def _prune_bypass(self) -> None:
        now = self.engine.now
        stale = [a for a, l in self.bypass.items() if l.expires_at <= now]
        for a in stale:
            del self.bypass[a]
