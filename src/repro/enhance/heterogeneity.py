"""Link-heterogeneity-aware role assignment (Section 5.1).

"Since t-peers are connected to more other peers than s-peers on
average, we assign peers with higher link capacities as t-peers while
peers with lower link capacities as s-peers."

The online decision lives in :meth:`BootstrapServer.decide_role`; this
module provides the *build-time* pre-assignment used when an experiment
constructs a whole population at once (the paper's setup: 1000 peers,
fixed capacity classes), plus the link-usage metric for connect-point
gating.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["assign_roles", "link_usage"]


def assign_roles(
    capacities: Sequence[float],
    p_s: float,
    rng: np.random.Generator,
    heterogeneity_aware: bool,
) -> List[str]:
    """Pre-assign "t"/"s" roles to a population.

    ``round((1 - p_s) * n)`` peers become t-peers (at least one).  With
    the enhancement on, the t-slots go to the highest-capacity peers
    (ties broken randomly); otherwise t-peers are drawn uniformly, as in
    the paper's base simulation setup ("each node is assigned to be
    either an s-peer or a t-peer randomly").
    """
    n = len(capacities)
    if n == 0:
        return []
    if not (0.0 <= p_s <= 1.0):
        raise ValueError(f"p_s must be in [0, 1], got {p_s}")
    n_t = max(1, round((1.0 - p_s) * n)) if p_s < 1.0 else 1
    n_t = min(n_t, n)
    roles = ["s"] * n
    if heterogeneity_aware:
        # Sort by capacity descending with a random tiebreak so equal
        # capacities don't privilege low indices.
        jitter = rng.random(n)
        order = sorted(range(n), key=lambda i: (-capacities[i], jitter[i]))
        chosen = order[:n_t]
    else:
        chosen = rng.choice(n, size=n_t, replace=False)
    for i in chosen:
        roles[int(i)] = "t"
    return roles


def link_usage(degree: int, capacity: float) -> float:
    """Section 5.1's *link usage*: "the ratio of the degree to the link
    capacity of the peer"."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    return degree / capacity
