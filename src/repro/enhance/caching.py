"""Popular-data caching (the paper's future work, Section 7).

"In the case that some extremely popular data are requested by a large
amount of peers, the peer hosting the data may be overwhelmed ...  The
goal of the caching scheme is to balance the load of the hosting peer
...  The challenges include how to choose some surrogate peers to
redirect the requests to, which data should be cached and how long the
data should be cached."

This module supplies the design the conclusion sketches:

* **which peers** -- two surrogate tiers: the *origin* of a successful
  lookup caches the item (its own repeats become free), and the
  origin's *t-peer* receives a :class:`CachePush` so every future
  remote lookup from that whole s-network is answered before touching
  the ring.  Surrogates therefore spread with demand: the hotter a key,
  the more s-networks hold a copy.
* **which data** -- whatever was actually requested (demand-driven), in
  an LRU cache of ``cache_capacity`` entries per peer.
* **how long** -- ``cache_ttl`` of simulated time, refreshed on hits
  ("transmitting a packet through the link will refresh the attached
  timer" is the same pattern the paper uses for bypass links).

:class:`CacheMixin` is mixed into :class:`~repro.core.hybridpeer.HybridPeer`;
the cache sits in front of the database on every lookup path (origin
checks, ring t-peers check before forwarding, flood receivers check).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from ..core.datastore import DataItem

__all__ = ["LruCache", "CacheMixin"]


class LruCache:
    """A TTL'd LRU cache of data items."""

    def __init__(self, capacity: int, ttl: float) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.capacity = capacity
        self.ttl = ttl
        self._entries: "OrderedDict[str, Tuple[DataItem, float]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str, now: float) -> Optional[DataItem]:
        """Fetch and refresh; expired entries are dropped on access."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        item, expires = entry
        if expires <= now:
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        self._entries[key] = (item, now + self.ttl)
        return item

    def put(self, item: DataItem, now: float) -> None:
        """Insert/refresh; evicts the least-recently-used on overflow."""
        if item.key in self._entries:
            self._entries.move_to_end(item.key)
        self._entries[item.key] = (item, now + self.ttl)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key: str) -> None:
        self._entries.pop(key, None)

    def keys(self) -> list:
        return list(self._entries)


class CacheMixin:
    """Demand-driven caching hooks for the hybrid peer."""

    def cache_lookup(self, key: str) -> Optional[DataItem]:
        """Check the local cache (None when caching is disabled)."""
        if self.cache is None:
            return None
        return self.cache.get(key, self.engine.now)

    def cache_store(self, key: str, value, d_id: int) -> None:
        """Adopt an item as a surrogate copy."""
        if self.cache is None:
            return
        self.cache.put(DataItem(key, value, d_id), self.engine.now)
        self.emit("cache.fill", key=key)

    def cache_hit_answer(
        self, origin: int, qid: int, item: DataItem, hops: int = 0
    ) -> None:
        """Answer a query from cache (counts as served by us)."""
        self.answers_served += 1
        self._answer(origin, qid, item, hops=hops)
