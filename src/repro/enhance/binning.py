"""Topology-aware landmark binning (Section 5.2).

Implements the binning scheme of Ratnasamy et al. [17] that the paper
adopts: the server designates landmark nodes; each joining peer probes
its distance to every landmark and sorts the landmark list by distance.
The resulting ordering is the peer's *coordinate*; peers with equal (or
near-equal) coordinates are physically close, and the server assigns
them to the same s-network.

In the simulation the "probe" is a read of the routing table -- the
same latency the probe packet would measure.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..net.routing import Router

__all__ = ["choose_landmarks", "coordinate_of", "prefix_similarity"]


def choose_landmarks(
    router: Router,
    n_landmarks: int,
    rng: np.random.Generator,
    spread_rounds: int = 8,
) -> Tuple[int, ...]:
    """Pick ``n_landmarks`` hosts, far from one another.

    The paper predetermines landmarks "so that they are uniformly
    distributed around the network" and requires that "every two
    landmark peers should not be too close to each other".  We use
    farthest-point sampling with a random start: iteratively add the
    candidate host that maximises its minimum latency to the landmarks
    chosen so far (sampling candidates to stay cheap).
    """
    n = router.n
    if not (1 <= n_landmarks <= n):
        raise ValueError(f"n_landmarks must be in [1, {n}], got {n_landmarks}")
    dist = router.latency_matrix()
    landmarks = [int(rng.integers(0, n))]
    while len(landmarks) < n_landmarks:
        candidates = rng.integers(0, n, size=max(spread_rounds * 8, 32))
        best, best_score = None, -1.0
        for c in candidates:
            c = int(c)
            if c in landmarks:
                continue
            score = min(float(dist[c, l]) for l in landmarks)
            if score > best_score:
                best, best_score = c, score
        if best is None:  # tiny networks: fall back to any unused host
            remaining = [h for h in range(n) if h not in landmarks]
            best = remaining[0]
        landmarks.append(best)
    return tuple(landmarks)


def coordinate_of(
    router: Router, host: int, landmarks: Sequence[int]
) -> Tuple[int, ...]:
    """A peer's bin: landmark indices in ascending order of distance.

    "The landmark peers are listed in an ascending order of distances.
    The ordered list acts as the coordinate of the new peer."
    """
    distances = [(router.latency(host, l), i) for i, l in enumerate(landmarks)]
    distances.sort()
    return tuple(i for _, i in distances)


def prefix_similarity(a: Tuple[int, ...], b: Tuple[int, ...]) -> int:
    """Length of the common prefix of two coordinates.

    The server uses this to find the physically nearest s-network when
    no exact bin match exists (more s-networks than bins, or vice
    versa).
    """
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return n
