"""Section 5 enhancements.

Link heterogeneity (:mod:`~repro.enhance.heterogeneity`), topology-aware
landmark binning (:mod:`~repro.enhance.binning`), and bypass links
(:mod:`~repro.enhance.bypass`).  Interest-based s-networks live in the
server's assignment policy (:mod:`repro.core.server`) and the workload
generator (:mod:`repro.workloads.keys`); the BitTorrent-style s-network
is a data-plane mode (:mod:`repro.core.dataplane`).
"""

from .binning import choose_landmarks, coordinate_of, prefix_similarity
from .bypass import BypassLink, BypassMixin
from .heterogeneity import assign_roles, link_usage

__all__ = [
    "choose_landmarks",
    "coordinate_of",
    "prefix_similarity",
    "BypassLink",
    "BypassMixin",
    "assign_roles",
    "link_usage",
]
