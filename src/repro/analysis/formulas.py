"""Closed-form performance models from Section 4.

Every expression of the paper's analysis, implemented verbatim (with
the domain-edge clamps the figures imply -- hop counts cannot go
negative, and the pure-endpoint cases ``p_s = 0`` / ``p_s = 1`` zero
out the term of the role that does not exist):

* average join latency, eq. (1)                     -> :func:`join_latency`
* out-of-flood-range peer count, eq. (2)            -> :func:`out_of_range_peers`
* probability of a local hit ``p = p_s / (N(1-p_s))`` -> :func:`local_hit_probability`
* average lookup latency, with/without degree cap   -> :func:`lookup_latency`

Latency here is measured in overlay hops, exactly as in the paper
("we use the number of hops the join request passes to estimate the
join latency").
"""

from __future__ import annotations

import math

__all__ = [
    "mean_snetwork_size",
    "local_hit_probability",
    "tpeer_join_hops",
    "speer_join_hops",
    "join_latency",
    "out_of_range_peers",
    "failure_ratio_model",
    "lookup_latency",
]


def _check(p_s: float, n_peers: int) -> None:
    if not (0.0 <= p_s <= 1.0):
        raise ValueError(f"p_s must be in [0, 1], got {p_s}")
    if n_peers < 1:
        raise ValueError(f"n_peers must be >= 1, got {n_peers}")


def mean_snetwork_size(p_s: float) -> float:
    """Average number of s-peers per s-network: ``p_s / (1 - p_s)``.

    (Section 4.1: s-peers are distributed evenly over the
    ``(1 - p_s) N`` s-networks.)  Diverges as ``p_s -> 1``.
    """
    if p_s >= 1.0:
        return math.inf
    return p_s / (1.0 - p_s)


def local_hit_probability(p_s: float, n_peers: int) -> float:
    """``p = p_s / (N (1 - p_s))``: chance the wanted item is local."""
    _check(p_s, n_peers)
    if p_s >= 1.0:
        return 1.0
    return min(1.0, p_s / (n_peers * (1.0 - p_s)))


def tpeer_join_hops(p_s: float, n_peers: int) -> float:
    """Join hops for a t-peer: ``log((1 - p_s) N / 2)`` (finger-assisted).

    Clamped at zero when the ring is so small the log goes negative.
    """
    _check(p_s, n_peers)
    ring = (1.0 - p_s) * n_peers / 2.0
    if ring <= 1.0:
        return 0.0
    return math.log2(ring)


def speer_join_hops(p_s: float, delta: int) -> float:
    """Join hops for an s-peer: ``log_delta(p_s / (1 - p_s))``.

    The walk descends the tree from root to a non-full node, i.e. the
    average tree height.  Clamped at zero for s-networks of size <= 1.
    """
    if delta < 2:
        # A degree-1 "tree" is a chain; height equals size.
        return mean_snetwork_size(p_s)
    size = mean_snetwork_size(p_s)
    if size <= 1.0:
        return 0.0
    return math.log(size, delta)


def join_latency(p_s: float, n_peers: int, delta: int) -> float:
    """Equation (1): the role-weighted average join hop count.

    ``(1-p_s) log((1-p_s)N/2) + p_s log_delta(p_s/(1-p_s))``
    """
    _check(p_s, n_peers)
    t_term = (1.0 - p_s) * tpeer_join_hops(p_s, n_peers)
    if p_s >= 1.0:
        return float("inf") if delta < 2 else p_s * speer_join_hops(1.0 - 1e-12, delta)
    s_term = p_s * speer_join_hops(p_s, delta)
    return t_term + s_term


def out_of_range_peers(p_s: float, delta: int, ttl: int) -> float:
    """Equation (2): average peers beyond a TTL flood's reach.

    Midpoint of the t-peer-initiated and leaf-initiated counts:

    ``p_s/(1-p_s) - (delta^(ttl+1)(delta-1) + delta^(2+ttl/2)
      - (delta-1) ttl/2) / (2 (delta-1)^2)``
    """
    if delta < 2:
        raise ValueError("equation (2) requires delta >= 2")
    if ttl < 1:
        raise ValueError("ttl must be >= 1")
    size = mean_snetwork_size(p_s)
    if not math.isfinite(size):
        return math.inf
    reach = (
        delta ** (ttl + 1) * (delta - 1)
        + delta ** (2 + ttl / 2.0)
        - (delta - 1) * ttl / 2.0
    ) / (2.0 * (delta - 1) ** 2)
    return max(0.0, size - reach)


def failure_ratio_model(p_s: float, delta: int, ttl: int) -> float:
    """Model lookup failure ratio: out-of-range peers / s-network size.

    The paper states the qualitative conclusion of eq. (2) ("the lookup
    failure ratio increases if p_s increases while it decreases when
    ttl increases"); normalising the out-of-range count by the network
    size turns it into a ratio comparable with Fig. 5a.
    """
    size = mean_snetwork_size(p_s)
    if size <= 0.0:
        return 0.0
    if not math.isfinite(size):
        return 1.0
    missed = out_of_range_peers(p_s, delta, ttl)
    return min(1.0, missed / size)


def lookup_latency(
    p_s: float,
    n_peers: int,
    ttl: int,
    delta: int | None = None,
) -> float:
    """Average lookup hop count (Section 4.2).

    Without the degree constraint (``delta is None``; star s-networks of
    diameter 2):

    ``p * 2 + (1 - p) * (2 + log((1-p_s)N/2))``

    With the degree constraint ``delta``:

    ``p * ttl + (1-p) * (max(0, 0.5 log_delta(p_s/(1-p_s)))
      + ttl + log((1-p_s)N/2))``
    """
    _check(p_s, n_peers)
    p = local_hit_probability(p_s, n_peers)
    ring = tpeer_join_hops(p_s, n_peers)  # log((1-p_s)N/2), clamped
    if delta is None:
        return p * 2.0 + (1.0 - p) * (2.0 + ring)
    if delta < 2:
        raise ValueError("degree-constrained latency requires delta >= 2")
    size = mean_snetwork_size(p_s)
    climb = 0.0
    if math.isfinite(size) and size > 1.0:
        climb = max(0.0, 0.5 * math.log(size, delta))
    elif not math.isfinite(size):
        climb = float("inf")
    return p * ttl + (1.0 - p) * (climb + ttl + ring)
