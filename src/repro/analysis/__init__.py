"""Section 4 performance analysis, in closed form.

:mod:`~repro.analysis.formulas` implements equations (1)-(2) and the
lookup-latency expressions; :mod:`~repro.analysis.curves` sweeps them
into the series of Fig. 3a / 3b.
"""

from .curves import AnalyticCurve, fig3a_join_latency, fig3b_lookup_latency
from .formulas import (
    failure_ratio_model,
    join_latency,
    local_hit_probability,
    lookup_latency,
    mean_snetwork_size,
    out_of_range_peers,
    speer_join_hops,
    tpeer_join_hops,
)

__all__ = [
    "AnalyticCurve",
    "fig3a_join_latency",
    "fig3b_lookup_latency",
    "failure_ratio_model",
    "join_latency",
    "local_hit_probability",
    "lookup_latency",
    "mean_snetwork_size",
    "out_of_range_peers",
    "speer_join_hops",
    "tpeer_join_hops",
]
