"""Series generators for the analytical figures (Fig. 3a / 3b).

Each function sweeps ``p_s`` across (0, 1) for several degree caps δ
and returns the arrays the paper plots, ready for a table printer or a
plotting library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from .formulas import join_latency, lookup_latency

__all__ = ["AnalyticCurve", "fig3a_join_latency", "fig3b_lookup_latency"]


@dataclass(frozen=True)
class AnalyticCurve:
    """One curve: x = p_s values, y = modelled hop counts, label = delta."""

    delta: int
    p_s: np.ndarray
    hops: np.ndarray

    def argmin(self) -> Tuple[float, float]:
        """(p_s, hops) at the curve's minimum -- the optimal mix."""
        i = int(np.nanargmin(self.hops))
        return float(self.p_s[i]), float(self.hops[i])


def _ps_grid(points: int) -> np.ndarray:
    # Open interval: the formulas blow up at exactly 0 and 1.
    return np.linspace(0.01, 0.99, points)


def fig3a_join_latency(
    n_peers: int = 1000,
    deltas: Sequence[int] = (2, 3, 4, 5),
    points: int = 99,
) -> Dict[int, AnalyticCurve]:
    """Fig. 3a: average join latency vs p_s for several deltas.

    Expected shape: U-shaped with the minimum around p_s 0.7-0.8,
    lower for larger delta.
    """
    grid = _ps_grid(points)
    curves = {}
    for delta in deltas:
        hops = np.array([join_latency(ps, n_peers, delta) for ps in grid])
        curves[delta] = AnalyticCurve(delta=delta, p_s=grid, hops=hops)
    return curves


def fig3b_lookup_latency(
    n_peers: int = 1000,
    ttl: int = 4,
    deltas: Sequence[int] = (2, 3, 4, 5),
    points: int = 99,
) -> Dict[int, AnalyticCurve]:
    """Fig. 3b: average lookup latency vs p_s for several deltas.

    Expected shape: flat/equal across deltas for p_s < 0.5 (lookups
    dominated by the ring), then diverging with larger delta cheaper.
    """
    grid = _ps_grid(points)
    curves = {}
    for delta in deltas:
        hops = np.array([lookup_latency(ps, n_peers, ttl, delta) for ps in grid])
        curves[delta] = AnalyticCurve(delta=delta, p_s=grid, hops=hops)
    return curves
