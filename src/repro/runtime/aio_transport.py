"""Asyncio TCP implementation of the overlay transport surface.

Where the simulator's :class:`~repro.overlay.transport.Transport`
delivers messages by scheduling engine events, :class:`AioTransport`
writes codec frames to per-peer TCP connections.  The protocol core is
oblivious to the difference: it calls ``send`` / ``send_many`` with an
overlay address, and here that address *is* the destination endpoint
(see :func:`~repro.runtime.codec.pack_endpoint`).

Design notes
------------
* **Per-peer connection pooling** -- one outbound connection per
  destination address, opened lazily on first send and reused until it
  fails or the transport closes.
* **Write coalescing** -- ``send`` only appends the frame to the
  destination's queue; a per-connection writer task drains the whole
  queue into a single ``write`` + ``drain``.  Bursts (floods, dumps)
  become one syscall instead of one per message.  ``bytes_sent`` (and
  the ``repro_wire_bytes_total{direction="tx"}`` counter) is bumped
  *after* the coalesced batch is written and drained, so it counts
  actual socket writes -- frames sitting in a queue, or dropped before
  the write, never inflate it.
* **Encode-once broadcast** -- ``send_many`` builds one frame and
  enqueues the same ``bytes`` object to every remote destination,
  mirroring the simulator's ``Transport.send_many``.  On a fanout-``k``
  flood the codec runs once, not ``k`` times.
* **Bounded queues with backpressure accounting** -- each destination
  queue holds at most ``max_queue`` frames.  When a burst outruns the
  socket, the *oldest* queued frame is dropped to admit the new one
  (newest frames carry the freshest protocol state) and
  ``repro_tx_backpressure_total{dest=...}`` is bumped; current depth
  across all queues is exported as the ``repro_tx_queue_depth`` gauge.
  Burst floods therefore degrade by shedding load instead of growing
  unbounded buffers.
* **Retry with exponential backoff** -- connects (and the frames queued
  behind them) are retried up to ``max_retries`` times with
  exponentially growing delays; connect and drain are both bounded by
  ``op_timeout``.  After the retries are exhausted the address is
  marked failed and subsequent sends drop, mirroring the simulator's
  drop-to-dead-peer behaviour (``is_reachable`` turns False, which is
  what the bootstrap server's crash arbitration keys off).
* **Loopback** -- sends to an actor registered on *this* transport
  bypass TCP and are dispatched via ``loop.call_soon``, preserving the
  simulator's semantics that a peer never talks to itself over the
  network in a blocking way.
"""

from __future__ import annotations

import asyncio
import logging
from collections import deque
from typing import Any, Deque, Dict, Iterable, Optional, Set, Tuple

from ..obs.registry import MetricsRegistry
from ..overlay.messages import Message
from ..overlay.transport import Actor, TransportBase
from .codec import MAX_FRAME, CodecError, MessageCodec, _LEN, format_endpoint, unpack_endpoint

__all__ = ["AioTransport", "frame_stream", "read_frame", "read_frame_body"]

logger = logging.getLogger("repro.runtime.transport")


async def read_frame(reader: asyncio.StreamReader) -> Optional[memoryview]:
    """Read one length-prefixed payload; None on clean EOF at a boundary."""
    try:
        header = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return await read_frame_body(reader, header)


async def read_frame_body(
    reader: asyncio.StreamReader, header: bytes
) -> Optional[memoryview]:
    """Read a frame's payload given its already-consumed length prefix.

    Split out of :func:`read_frame` so the node daemon can sniff the
    first bytes of an inbound connection (HTTP vs framed protocol) and
    still resume normal framing with the bytes it consumed.

    Returns a :class:`memoryview` over the single ``bytes`` object the
    stream reader assembled: the one unavoidable copy off the socket
    buffer is the last one.  :meth:`MessageCodec.decode` slices that
    view in place (header parse, struct unpacks, string decodes), so a
    v2 frame reaches its message object with no intermediate copies.
    """
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise CodecError(f"incoming frame too large: {length} bytes")
    try:
        return memoryview(await reader.readexactly(length))
    except (asyncio.IncompleteReadError, ConnectionError):
        return None


async def frame_stream(reader: asyncio.StreamReader, initial: bytes = b""):
    """Yield every frame payload on ``reader`` as a :class:`memoryview`.

    The per-frame hot loop for inbound protocol connections.  Where
    :func:`read_frame` awaits the event loop twice per frame (length,
    then body), this reads the socket in large chunks and slices all
    complete frames out of each chunk -- under a flood burst the remote
    writer coalesces dozens of frames per segment, so this collapses
    dozens of awaits into one.  Yielded views alias the chunk buffer
    (``bytes``, so later buffer turnover cannot invalidate them); each
    is consumed by ``decode`` before the generator is advanced, making
    the whole rx path copy-free after the socket read.

    ``initial`` seeds the buffer with bytes already consumed from the
    stream (the daemon's HTTP-vs-frame sniff).  Ends on EOF; trailing
    bytes that do not form a complete frame are discarded, matching
    :func:`read_frame`'s mid-frame-EOF behaviour.
    """
    buf = bytes(initial)
    pos = 0
    while True:
        n = len(buf)
        if n - pos >= _LEN.size:
            mv = memoryview(buf)
            while n - pos >= _LEN.size:
                (length,) = _LEN.unpack_from(buf, pos)
                if length > MAX_FRAME:
                    raise CodecError(f"incoming frame too large: {length} bytes")
                body_start = pos + _LEN.size
                if n - body_start < length:
                    break
                yield mv[body_start : body_start + length]
                pos = body_start + length
        try:
            chunk = await reader.read(_READ_CHUNK)
        except (OSError, ConnectionError):
            return
        if not chunk:
            return
        # One chunk-level concat per read; frames inside are sliced,
        # never copied.
        buf = buf[pos:] + chunk
        pos = 0


_READ_CHUNK = 256 * 1024


class _Conn:
    """Outbound connection state for one destination address."""

    __slots__ = ("queue", "wakeup", "task", "failed", "connects")

    def __init__(self) -> None:
        self.queue: Deque[bytes] = deque()
        self.wakeup = asyncio.Event()
        self.task: Optional[asyncio.Task] = None
        self.failed = False
        self.connects = 0  # successful connects (>1 means reconnects)


class AioTransport(TransportBase):
    """TCP transport speaking the :mod:`repro.runtime.codec` framing.

    Parameters
    ----------
    codec:
        Shared codec (must match the remote end's registration table).
    loop:
        Event loop to schedule on; defaults to the running loop.
    op_timeout:
        Seconds allowed for one connect attempt or one drain.
    max_retries:
        Connect attempts before a destination is declared unreachable.
    backoff_base:
        First retry delay in seconds; doubles per attempt (capped at 2s).
    max_queue:
        Outbound queue bound, in frames, per destination.  A burst
        beyond this sheds the *oldest* queued frame per new arrival
        (drop-oldest: newer frames carry fresher protocol state) and
        counts it as backpressure.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  When
        given, the transport feeds per-type tx frame counts, wire
        bytes (post-coalescing -- see module notes), the
        ``repro_tx_queue_depth`` gauge, and per-destination
        backpressure/drop/retry/reconnect counters into it (the node's
        ``/metrics`` endpoint exposes them).
    """

    def __init__(
        self,
        codec: MessageCodec,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        op_timeout: float = 5.0,
        max_retries: int = 4,
        backoff_base: float = 0.05,
        max_queue: int = 1024,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.codec = codec
        self.loop = loop if loop is not None else asyncio.get_event_loop()
        self.op_timeout = op_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.max_queue = max_queue
        self.messages_sent = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        # Per-destination accounting, kept even without a registry so
        # drops are never invisible (the bool return of send() is
        # routinely ignored by fire-and-forget protocol code).
        self.dropped_by_dest: Dict[int, int] = {}
        self.retried_by_dest: Dict[int, int] = {}
        self.reconnects_by_dest: Dict[int, int] = {}
        self.backpressure_by_dest: Dict[int, int] = {}
        self._drop_warned: Set[int] = set()
        self._backpressure_warned: Set[int] = set()
        self._actors: Dict[int, Actor] = {}
        self._conns: Dict[int, _Conn] = {}
        self._closing = False
        self.registry = registry
        self._frames_fam = None
        self._tx_children: Dict[type, object] = {}
        self._wire_bytes_tx = None
        self._dropped_fam = None
        self._retried_fam = None
        self._reconnects_fam = None
        self._backpressure_fam = None
        if registry is not None:
            self._frames_fam = registry.counter(
                "repro_frames_total",
                "Protocol messages handled, by direction and message type",
                labelnames=("direction", "type"),
            )
            self._wire_bytes_tx = registry.counter(
                "repro_wire_bytes_total",
                "Wire payload bytes moved, by direction",
                labelnames=("direction",),
            ).labels("tx")
            self._dropped_fam = registry.counter(
                "repro_frames_dropped_total",
                "Frames dropped after connect retries were exhausted",
                labelnames=("dest",),
            )
            self._retried_fam = registry.counter(
                "repro_frames_retried_total",
                "Frames re-queued after a connection died mid-write",
                labelnames=("dest",),
            )
            self._reconnects_fam = registry.counter(
                "repro_transport_reconnects_total",
                "Successful re-connects to a previously connected destination",
                labelnames=("dest",),
            )
            self._backpressure_fam = registry.counter(
                "repro_tx_backpressure_total",
                "Oldest-frame drops forced by a full outbound queue",
                labelnames=("dest",),
            )
            registry.gauge(
                "repro_tx_queue_depth",
                "Frames currently queued for transmission, all destinations",
            ).set_function(self.tx_queue_depth)

    # ------------------------------------------------------------------
    # Registry (local actors on this transport)
    # ------------------------------------------------------------------
    def register(self, actor: Actor) -> None:
        if actor.address in self._actors:
            raise ValueError(f"address {actor.address} already registered")
        self._actors[actor.address] = actor

    def unregister(self, address: int) -> None:
        self._actors.pop(address, None)

    def actor(self, address: int) -> Optional[Actor]:
        return self._actors.get(address)

    def is_reachable(self, address: int) -> bool:
        """Best local knowledge: False only after retries were exhausted."""
        actor = self._actors.get(address)
        if actor is not None:
            return actor.alive
        conn = self._conns.get(address)
        return conn is None or not conn.failed

    # ------------------------------------------------------------------
    # Send surface (called synchronously by protocol code)
    # ------------------------------------------------------------------
    def send(self, src: Actor, dst_address: int, msg: Message) -> bool:
        if not src.alive or self._closing:
            return False
        msg.sender = src.address
        local = self._actors.get(dst_address)
        if local is not None:
            if not local.alive:
                self.messages_dropped += 1
                return False
            self.loop.call_soon(local.receive, msg)
            self.messages_sent += 1
            if self._frames_fam is not None:
                self._count_tx(type(msg))
            return True
        try:
            frame = self.codec.frame(msg)
        except CodecError:
            self.messages_dropped += 1
            raise
        if self._enqueue(dst_address, frame):
            if self._frames_fam is not None:
                self._count_tx(type(msg))
            return True
        return False

    def send_many(self, src: Actor, dst_addresses: Iterable[int], msg: Message) -> int:
        """Fan out one message; the frame is encoded exactly once."""
        if not src.alive or self._closing:
            return 0
        msg.sender = src.address
        frame: Optional[bytes] = None
        delivered = 0
        for dst in dst_addresses:
            local = self._actors.get(dst)
            if local is not None:
                if local.alive:
                    self.loop.call_soon(local.receive, msg)
                    self.messages_sent += 1
                    delivered += 1
                else:
                    self.messages_dropped += 1
                continue
            if frame is None:
                frame = self.codec.frame(msg)
            if self._enqueue(dst, frame):
                delivered += 1
        if delivered and self._frames_fam is not None:
            self._count_tx(type(msg), delivered)
        return delivered

    def _count_tx(self, msg_type: type, amount: int = 1) -> None:
        child = self._tx_children.get(msg_type)
        if child is None:
            child = self._frames_fam.labels("tx", msg_type.__name__)
            self._tx_children[msg_type] = child
        child.inc(amount)

    def _note_dropped(self, dst_address: int, count: int) -> None:
        """Account frames lost to an unreachable destination.

        Logged at WARNING exactly once per destination: a dead peer can
        eat thousands of flood frames and repeating the line per frame
        would drown the log without adding information.
        """
        if count <= 0:
            return
        self.messages_dropped += count
        total = self.dropped_by_dest.get(dst_address, 0) + count
        self.dropped_by_dest[dst_address] = total
        endpoint = format_endpoint(dst_address)
        if self._dropped_fam is not None:
            self._dropped_fam.labels(endpoint).inc(count)
        if dst_address not in self._drop_warned:
            self._drop_warned.add(dst_address)
            logger.warning(
                "dropping frames to unreachable %s after %d connect attempts "
                "(%d dropped so far; further drops to this destination are "
                "counted but not logged)",
                endpoint, self.max_retries, total,
            )

    def _enqueue(self, dst_address: int, frame: bytes) -> bool:
        conn = self._conns.get(dst_address)
        if conn is None:
            conn = _Conn()
            self._conns[dst_address] = conn
        if conn.failed:
            self._note_dropped(dst_address, 1)
            return False
        conn.queue.append(frame)
        if len(conn.queue) > self.max_queue:
            conn.queue.popleft()
            self._note_backpressure(dst_address, 1)
        conn.wakeup.set()
        if conn.task is None or conn.task.done():
            conn.task = self.loop.create_task(
                self._writer(dst_address, conn),
                name=f"aio-transport-writer-{dst_address}",
            )
        self.messages_sent += 1
        return True

    def tx_queue_depth(self) -> int:
        """Frames queued for transmission right now, across destinations."""
        return sum(len(conn.queue) for conn in self._conns.values())

    def connection_info(self) -> Dict[str, Dict[str, Any]]:
        """Per-destination transmit-side state, keyed by endpoint.

        ``tx_codec_version`` is the body format this transport writes to
        that destination -- the configured codec version (every decoder
        accepts both formats by default, so no in-band negotiation is
        needed and broadcast frames stay shareable across destinations).
        """
        info: Dict[str, Dict[str, Any]] = {}
        for dst, conn in self._conns.items():
            info[format_endpoint(dst)] = {
                "tx_codec_version": self.codec.version,
                "queue_depth": len(conn.queue),
                "connects": conn.connects,
                "failed": conn.failed,
                "backpressure_drops": self.backpressure_by_dest.get(dst, 0),
            }
        return info

    def _note_backpressure(self, dst_address: int, count: int) -> None:
        """Account oldest-frame drops forced by a full outbound queue."""
        if count <= 0:
            return
        self.messages_dropped += count
        total = self.backpressure_by_dest.get(dst_address, 0) + count
        self.backpressure_by_dest[dst_address] = total
        endpoint = format_endpoint(dst_address)
        if self._backpressure_fam is not None:
            self._backpressure_fam.labels(endpoint).inc(count)
        if dst_address not in self._backpressure_warned:
            self._backpressure_warned.add(dst_address)
            logger.warning(
                "outbound queue to %s full (%d frames); dropping oldest "
                "(%d shed so far; further backpressure drops to this "
                "destination are counted but not logged)",
                endpoint, self.max_queue, total,
            )

    # ------------------------------------------------------------------
    # Writer task: one per live destination
    # ------------------------------------------------------------------
    async def _writer(self, dst_address: int, conn: _Conn) -> None:
        host, port = unpack_endpoint(dst_address)
        reader: Optional[asyncio.StreamReader] = None
        writer: Optional[asyncio.StreamWriter] = None
        try:
            while not self._closing:
                if not conn.queue:
                    conn.wakeup.clear()
                    await conn.wakeup.wait()
                    continue
                if writer is not None and reader is not None and reader.at_eof():
                    # Remote dropped the connection (FIN seen).  Protocol
                    # connections are one-way, so any EOF means dead --
                    # without this check the first write after the drop
                    # would be silently discarded by the remote's RST
                    # instead of raising.
                    self._abort(writer)
                    writer = None
                if writer is None or writer.is_closing():
                    reader, writer = await self._connect(dst_address, host, port, conn)
                    if writer is None:
                        return  # marked failed; queued frames dropped
                    conn.connects += 1
                    if conn.connects > 1:
                        self.reconnects_by_dest[dst_address] = (
                            self.reconnects_by_dest.get(dst_address, 0) + 1
                        )
                        if self._reconnects_fam is not None:
                            self._reconnects_fam.labels(
                                format_endpoint(dst_address)
                            ).inc()
                batch = list(conn.queue)
                conn.queue.clear()
                data = b"".join(batch)
                try:
                    writer.write(data)
                    await asyncio.wait_for(writer.drain(), self.op_timeout)
                    # Post-coalescing accounting: this is the size of
                    # the actual socket write that just drained, not
                    # the sum of frames ever enqueued.
                    self.bytes_sent += len(data)
                    if self._wire_bytes_tx is not None:
                        self._wire_bytes_tx.inc(len(data))
                except (OSError, asyncio.TimeoutError):
                    # Connection died mid-write: put the batch back and
                    # reconnect (frames may be duplicated at the far
                    # end, which the protocol tolerates -- dispatch is
                    # idempotent for every message type).  Sends may
                    # have landed behind the batch meanwhile, so
                    # re-bound the merged queue, oldest first.
                    conn.queue.extendleft(reversed(batch))
                    overflow = len(conn.queue) - self.max_queue
                    if overflow > 0:
                        for _ in range(overflow):
                            conn.queue.popleft()
                        self._note_backpressure(dst_address, overflow)
                    self.retried_by_dest[dst_address] = (
                        self.retried_by_dest.get(dst_address, 0) + len(batch)
                    )
                    if self._retried_fam is not None:
                        self._retried_fam.labels(format_endpoint(dst_address)).inc(
                            len(batch)
                        )
                    self._abort(writer)
                    writer = None
        finally:
            if writer is not None:
                self._abort(writer)

    async def _connect(
        self, dst_address: int, host: str, port: int, conn: _Conn
    ) -> Tuple[Optional[asyncio.StreamReader], Optional[asyncio.StreamWriter]]:
        delay = self.backoff_base
        for attempt in range(self.max_retries):
            if self._closing:
                return None, None
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), self.op_timeout
                )
                return reader, writer
            except (OSError, asyncio.TimeoutError):
                if attempt + 1 < self.max_retries:
                    await asyncio.sleep(delay)
                    delay = min(delay * 2, 2.0)
        conn.failed = True
        dropped = len(conn.queue)
        conn.queue.clear()
        self._note_dropped(dst_address, dropped)
        return None, None

    @staticmethod
    def _abort(writer: asyncio.StreamWriter) -> None:
        try:
            writer.transport.abort()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Stop all writer tasks and drop every pooled connection."""
        self._closing = True
        tasks = [c.task for c in self._conns.values() if c.task is not None]
        for conn in self._conns.values():
            conn.wakeup.set()
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._conns.clear()
