"""Asyncio TCP implementation of the overlay transport surface.

Where the simulator's :class:`~repro.overlay.transport.Transport`
delivers messages by scheduling engine events, :class:`AioTransport`
writes codec frames to per-peer TCP connections.  The protocol core is
oblivious to the difference: it calls ``send`` / ``send_many`` with an
overlay address, and here that address *is* the destination endpoint
(see :func:`~repro.runtime.codec.pack_endpoint`).

Design notes
------------
* **Per-peer connection pooling** -- one outbound connection per
  destination address, opened lazily on first send and reused until it
  fails or the transport closes.
* **Write coalescing** -- ``send`` only appends the frame to the
  destination's queue; a per-connection writer task drains the whole
  queue into a single ``write`` + ``drain``.  Bursts (floods, dumps)
  become one syscall instead of one per message.
* **Retry with exponential backoff** -- connects (and the frames queued
  behind them) are retried up to ``max_retries`` times with
  exponentially growing delays; connect and drain are both bounded by
  ``op_timeout``.  After the retries are exhausted the address is
  marked failed and subsequent sends drop, mirroring the simulator's
  drop-to-dead-peer behaviour (``is_reachable`` turns False, which is
  what the bootstrap server's crash arbitration keys off).
* **Loopback** -- sends to an actor registered on *this* transport
  bypass TCP and are dispatched via ``loop.call_soon``, preserving the
  simulator's semantics that a peer never talks to itself over the
  network in a blocking way.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Iterable, List, Optional, Tuple

from ..overlay.messages import Message
from ..overlay.transport import Actor, TransportBase
from .codec import MAX_FRAME, CodecError, MessageCodec, _LEN, unpack_endpoint

__all__ = ["AioTransport", "read_frame"]


async def read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one length-prefixed payload; None on clean EOF at a boundary."""
    try:
        header = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise CodecError(f"incoming frame too large: {length} bytes")
    try:
        return await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None


class _Conn:
    """Outbound connection state for one destination address."""

    __slots__ = ("queue", "wakeup", "task", "failed")

    def __init__(self) -> None:
        self.queue: List[bytes] = []
        self.wakeup = asyncio.Event()
        self.task: Optional[asyncio.Task] = None
        self.failed = False


class AioTransport(TransportBase):
    """TCP transport speaking the :mod:`repro.runtime.codec` framing.

    Parameters
    ----------
    codec:
        Shared codec (must match the remote end's registration table).
    loop:
        Event loop to schedule on; defaults to the running loop.
    op_timeout:
        Seconds allowed for one connect attempt or one drain.
    max_retries:
        Connect attempts before a destination is declared unreachable.
    backoff_base:
        First retry delay in seconds; doubles per attempt (capped at 2s).
    """

    def __init__(
        self,
        codec: MessageCodec,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        op_timeout: float = 5.0,
        max_retries: int = 4,
        backoff_base: float = 0.05,
    ) -> None:
        self.codec = codec
        self.loop = loop if loop is not None else asyncio.get_event_loop()
        self.op_timeout = op_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.messages_sent = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self._actors: Dict[int, Actor] = {}
        self._conns: Dict[int, _Conn] = {}
        self._closing = False

    # ------------------------------------------------------------------
    # Registry (local actors on this transport)
    # ------------------------------------------------------------------
    def register(self, actor: Actor) -> None:
        if actor.address in self._actors:
            raise ValueError(f"address {actor.address} already registered")
        self._actors[actor.address] = actor

    def unregister(self, address: int) -> None:
        self._actors.pop(address, None)

    def actor(self, address: int) -> Optional[Actor]:
        return self._actors.get(address)

    def is_reachable(self, address: int) -> bool:
        """Best local knowledge: False only after retries were exhausted."""
        actor = self._actors.get(address)
        if actor is not None:
            return actor.alive
        conn = self._conns.get(address)
        return conn is None or not conn.failed

    # ------------------------------------------------------------------
    # Send surface (called synchronously by protocol code)
    # ------------------------------------------------------------------
    def send(self, src: Actor, dst_address: int, msg: Message) -> bool:
        if not src.alive or self._closing:
            return False
        msg.sender = src.address
        local = self._actors.get(dst_address)
        if local is not None:
            if not local.alive:
                self.messages_dropped += 1
                return False
            self.loop.call_soon(local.receive, msg)
            self.messages_sent += 1
            return True
        try:
            frame = self.codec.frame(msg)
        except CodecError:
            self.messages_dropped += 1
            raise
        return self._enqueue(dst_address, frame)

    def send_many(self, src: Actor, dst_addresses: Iterable[int], msg: Message) -> int:
        """Fan out one message; the frame is encoded exactly once."""
        if not src.alive or self._closing:
            return 0
        msg.sender = src.address
        frame: Optional[bytes] = None
        delivered = 0
        for dst in dst_addresses:
            local = self._actors.get(dst)
            if local is not None:
                if local.alive:
                    self.loop.call_soon(local.receive, msg)
                    self.messages_sent += 1
                    delivered += 1
                else:
                    self.messages_dropped += 1
                continue
            if frame is None:
                frame = self.codec.frame(msg)
            if self._enqueue(dst, frame):
                delivered += 1
        return delivered

    def _enqueue(self, dst_address: int, frame: bytes) -> bool:
        conn = self._conns.get(dst_address)
        if conn is None:
            conn = _Conn()
            self._conns[dst_address] = conn
        if conn.failed:
            self.messages_dropped += 1
            return False
        conn.queue.append(frame)
        conn.wakeup.set()
        if conn.task is None or conn.task.done():
            conn.task = self.loop.create_task(
                self._writer(dst_address, conn),
                name=f"aio-transport-writer-{dst_address}",
            )
        self.messages_sent += 1
        return True

    # ------------------------------------------------------------------
    # Writer task: one per live destination
    # ------------------------------------------------------------------
    async def _writer(self, dst_address: int, conn: _Conn) -> None:
        host, port = unpack_endpoint(dst_address)
        reader: Optional[asyncio.StreamReader] = None
        writer: Optional[asyncio.StreamWriter] = None
        try:
            while not self._closing:
                if not conn.queue:
                    conn.wakeup.clear()
                    await conn.wakeup.wait()
                    continue
                if writer is not None and reader is not None and reader.at_eof():
                    # Remote dropped the connection (FIN seen).  Protocol
                    # connections are one-way, so any EOF means dead --
                    # without this check the first write after the drop
                    # would be silently discarded by the remote's RST
                    # instead of raising.
                    self._abort(writer)
                    writer = None
                if writer is None or writer.is_closing():
                    reader, writer = await self._connect(host, port, conn)
                    if writer is None:
                        return  # marked failed; queued frames dropped
                batch, conn.queue = conn.queue, []
                data = b"".join(batch)
                try:
                    writer.write(data)
                    await asyncio.wait_for(writer.drain(), self.op_timeout)
                    self.bytes_sent += len(data)
                except (OSError, asyncio.TimeoutError):
                    # Connection died mid-write: put the batch back and
                    # reconnect (frames may be duplicated at the far
                    # end, which the protocol tolerates -- dispatch is
                    # idempotent for every message type).
                    conn.queue = batch + conn.queue
                    self._abort(writer)
                    writer = None
        finally:
            if writer is not None:
                self._abort(writer)

    async def _connect(
        self, host: str, port: int, conn: _Conn
    ) -> Tuple[Optional[asyncio.StreamReader], Optional[asyncio.StreamWriter]]:
        delay = self.backoff_base
        for attempt in range(self.max_retries):
            if self._closing:
                return None, None
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), self.op_timeout
                )
                return reader, writer
            except (OSError, asyncio.TimeoutError):
                if attempt + 1 < self.max_retries:
                    await asyncio.sleep(delay)
                    delay = min(delay * 2, 2.0)
        conn.failed = True
        self.messages_dropped += len(conn.queue)
        conn.queue.clear()
        return None, None

    @staticmethod
    def _abort(writer: asyncio.StreamWriter) -> None:
        try:
            writer.transport.abort()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Stop all writer tasks and drop every pooled connection."""
        self._closing = True
        tasks = [c.task for c in self._conns.values() if c.task is not None]
        for conn in self._conns.values():
            conn.wakeup.set()
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._conns.clear()
