"""Client verbs: correlated request/reply messages to a live node.

Protocol frames are fire-and-forget -- a peer never answers on the same
connection it received from.  The client verbs are different: ``put`` /
``get`` / ``status`` want an answer, so a node replies with a
:class:`ClientReply` frame on the *inbound* connection the request
arrived on.  They reuse the exact same codec and framing as protocol
messages but register in the reserved type-id band at
:data:`~repro.runtime.codec.CLIENT_TYPE_BASE` so they can never collide
with :func:`~repro.overlay.messages.wire_types` growth.

**Request correlation** -- every request carries a connection-scoped
``request_id``, echoed verbatim on its :class:`ClientReply`.  The node
answers each request as it resolves, *not* in arrival order, so one TCP
connection can carry many concurrent in-flight operations
(:class:`ClientConnection` multiplexes them: futures keyed by request
id, completed out of order as replies land).  ``request_id 0`` is the
uncorrelated sentinel: a reply carrying it is matched to the oldest
in-flight request, which keeps a new client interoperable with a
pre-correlation node that answers serially.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from ..overlay.messages import Message
from ..swarm import manifest as swarm_manifest
from .codec import CLIENT_TYPE_BASE, WIRE_VERSION, CodecError, MessageCodec, default_codec
from .aio_transport import frame_stream

__all__ = [
    "ClientPut",
    "ClientGet",
    "ClientStatus",
    "ClientReply",
    "ClientPutPiece",
    "ClientPutFile",
    "ClientGetFile",
    "ClientGetPiece",
    "ClientPieceReply",
    "ClientConnection",
    "CLIENT_REQUEST_TYPES",
    "client_types",
    "runtime_codec",
    "put_file",
    "get_file",
    "acall",
    "call",
]


@dataclass(slots=True)
class ClientPut(Message):
    """Store ``value`` under ``key`` via the receiving node's data plane."""

    key: str = ""
    value: Any = None
    request_id: int = 0  # connection-scoped correlation id (0 = none)


@dataclass(slots=True)
class ClientGet(Message):
    """Look ``key`` up through the overlay; reply carries the value."""

    key: str = ""
    request_id: int = 0  # connection-scoped correlation id (0 = none)


@dataclass(slots=True)
class ClientStatus(Message):
    """Ask a node (or the bootstrap server) for a JSON status snapshot.

    ``include_metrics`` folds the node's full metrics-registry snapshot
    (the same data ``/metrics.json`` serves) into the reply payload
    under ``"metrics"``.
    """

    include_metrics: bool = False
    request_id: int = 0  # connection-scoped correlation id (0 = none)


@dataclass(slots=True)
class ClientReply(Message):
    """Uniform answer: ``ok`` plus either a payload or an error string.

    ``request_id`` echoes the request's correlation id so a pipelined
    connection can match out-of-order replies to their requests.
    """

    ok: bool = False
    payload: Any = None
    error: Optional[str] = None
    request_id: int = 0


# ----------------------------------------------------------------------
# Bulk transfer verbs (repro.swarm): put-file / get-file
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ClientPutPiece(Message):
    """Stage one raw piece of chunked content on the receiving node.

    ``data`` is a real ``bytes`` field, so the piece travels as a raw
    v2 frame (no base64).  Pieces are held in a staging area until the
    matching :class:`ClientPutFile` commits them against its manifest.
    """

    content: str = ""  # whole-content SHA-256, hex (staging key)
    index: int = 0
    total: int = 0
    data: bytes = b""
    request_id: int = 0


@dataclass(slots=True)
class ClientPutFile(Message):
    """Commit staged pieces: verify hashes, store the manifest, seed.

    The node checks every staged piece against ``pieces`` (the per-piece
    SHA-256 list), stores the manifest through the ordinary put path
    (replication applies), registers itself as the first seed with the
    tracker, and only then replies ok.
    """

    key: str = ""
    content: str = ""
    length: int = 0
    piece_size: int = 0
    pieces: Tuple[str, ...] = ()
    request_id: int = 0


@dataclass(slots=True)
class ClientGetFile(Message):
    """Resolve ``key``'s manifest and swarm-fetch its content.

    The reply payload carries the manifest and fetch counters; the
    client then pulls the pieces with :class:`ClientGetPiece` and
    verifies each hash itself (see :func:`get_file`).
    """

    key: str = ""
    request_id: int = 0


@dataclass(slots=True)
class ClientGetPiece(Message):
    """Read one piece the node holds; answered by ClientPieceReply."""

    content: str = ""
    index: int = 0
    request_id: int = 0


@dataclass(slots=True)
class ClientPieceReply(ClientReply):
    """A :class:`ClientReply` with a raw ``bytes`` piece body.

    Subclassing keeps :class:`ClientConnection`'s reply matching
    untouched while the piece data rides a length-prefixed ``bytes``
    field on the v2 fast path instead of base64 inside the JSON payload.
    """

    data: bytes = b""


# Every verb a node answers; NodeDaemon's connection loop routes these
# to handle_client and everything else to the protocol actor.
CLIENT_REQUEST_TYPES = (
    ClientPut,
    ClientGet,
    ClientStatus,
    ClientPutPiece,
    ClientPutFile,
    ClientGetFile,
    ClientGetPiece,
)


def client_types() -> tuple:
    """Client message classes in stable wire-registration order."""
    return (
        ClientPut,
        ClientGet,
        ClientStatus,
        ClientReply,
        # repro.swarm bulk-transfer verbs (appended in PR 8; ids derive
        # from position, so new classes only ever go here)
        ClientPutPiece,
        ClientPutFile,
        ClientGetFile,
        ClientGetPiece,
        ClientPieceReply,
    )


def runtime_codec(
    version: int = WIRE_VERSION, accept: Optional[Iterable[int]] = None
) -> MessageCodec:
    """The full live-runtime codec: every protocol message + client verbs.

    ``version``/``accept`` pass straight through to
    :class:`~repro.runtime.codec.MessageCodec`: ``version`` is the body
    format this codec *encodes*, ``accept`` the versions it decodes
    (both, by default, so mixed-version localnets interoperate).
    """
    codec = default_codec(version=version, accept=accept)
    for i, cls in enumerate(client_types()):
        codec.register(cls, CLIENT_TYPE_BASE + i)
    return codec


class ClientConnection:
    """One persistent TCP connection multiplexing concurrent client ops.

    Requests are assigned connection-scoped ids and written to the
    socket immediately; a single background reader task completes the
    matching future as each :class:`ClientReply` lands -- in whatever
    order the node resolves them.  Many coroutines may call
    :meth:`request` concurrently on the same connection; nothing is
    serialized but the socket writes themselves (each frame is one
    ``write`` call, so frames never interleave).

    Use as an async context manager, or ``connect()`` / ``aclose()``
    explicitly::

        async with ClientConnection(host, port) as conn:
            replies = await asyncio.gather(
                *(conn.request(ClientGet(key=k)) for k in keys)
            )

    On EOF, a decode error, or :meth:`aclose`, every in-flight future
    is failed with :class:`ConnectionError` -- futures never leak.

    ``retry=True`` adds a single bounded reconnect-and-retry for the
    *idempotent* verbs (:class:`ClientGet` / :class:`ClientStatus`):
    when such a request fails with :class:`ConnectionError` (reader
    died, node restarted, failover handoff), the connection is reopened
    once and the request re-sent.  Off by default -- puts and any
    explicit ``aclose()`` never retry, so non-idempotent operations are
    never silently repeated.
    """

    IDEMPOTENT_VERBS = (ClientGet, ClientStatus, ClientGetFile, ClientGetPiece)

    def __init__(
        self,
        host: str,
        port: int,
        codec: Optional[MessageCodec] = None,
        timeout: float = 10.0,
        retry: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.codec = codec if codec is not None else runtime_codec()
        self._ids = itertools.count(1)  # 0 is the uncorrelated sentinel
        self._pending: Dict[int, asyncio.Future] = {}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._closed = False
        self._user_closed = False  # aclose() called: never reconnect
        self._conn_gen = 0  # bumped per successful reconnect
        self._reconnect_lock = asyncio.Lock()

    # ------------------------------------------------------------------
    async def connect(self, timeout: Optional[float] = None) -> "ClientConnection":
        """Open the socket and start the reply reader; idempotent."""
        if self._writer is not None:
            return self
        if self._closed:
            raise ConnectionError("connection already closed")
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            self.timeout if timeout is None else timeout,
        )
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_replies(), name=f"client-conn-{self.host}:{self.port}"
        )
        return self

    async def __aenter__(self) -> "ClientConnection":
        return await self.connect()

    async def __aexit__(self, *exc: object) -> None:
        await self.aclose()

    @property
    def inflight(self) -> int:
        """Requests currently awaiting their reply."""
        return len(self._pending)

    # ------------------------------------------------------------------
    async def request(self, msg: Message, timeout: Optional[float] = None) -> ClientReply:
        """Send one client verb; await its (possibly out-of-order) reply.

        With ``retry=True`` and an idempotent verb, one
        :class:`ConnectionError` triggers a single reconnect + re-send;
        every other failure (including timeouts) propagates unchanged.
        """
        retriable = self.retry and isinstance(msg, self.IDEMPOTENT_VERBS)
        attempts = 2 if retriable else 1
        for attempt in range(attempts):
            gen = self._conn_gen
            try:
                return await self._request_once(msg, timeout)
            except ConnectionError:
                if attempt + 1 >= attempts or self._user_closed:
                    raise
                await self._ensure_reconnected(gen)
        raise ConnectionError("unreachable")  # pragma: no cover

    async def _request_once(
        self, msg: Message, timeout: Optional[float] = None
    ) -> ClientReply:
        if self._writer is None or self._closed:
            raise ConnectionError(
                f"connection to {self.host}:{self.port} is not open"
            )
        rid = next(self._ids)
        msg.request_id = rid
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        try:
            self._writer.write(self.codec.frame(msg))
            await self._writer.drain()
            return await asyncio.wait_for(
                future, self.timeout if timeout is None else timeout
            )
        finally:
            self._pending.pop(rid, None)

    async def _ensure_reconnected(self, gen: int) -> None:
        """Reopen the socket once (retry path).

        Serialised behind a lock so concurrent failing requests share
        one reconnect: whoever arrives first (matching generation)
        tears down the dead reader/writer and dials again; later
        arrivals see the bumped generation and return immediately.
        """
        async with self._reconnect_lock:
            if self._user_closed:
                raise ConnectionError(
                    f"connection to {self.host}:{self.port} was closed"
                )
            if self._conn_gen != gen:
                return  # someone else already reconnected
            task, self._reader_task = self._reader_task, None
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            writer, self._writer = self._writer, None
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (OSError, ConnectionError):
                    pass
            self._reader = None
            self._closed = False
            await self.connect()
            self._conn_gen += 1

    async def _read_replies(self) -> None:
        assert self._reader is not None
        error: Optional[BaseException] = None
        try:
            async for payload in frame_stream(self._reader):
                try:
                    reply = self.codec.decode(payload)
                except CodecError as exc:
                    error = ConnectionError(f"undecodable reply frame: {exc}")
                    break
                if not isinstance(reply, ClientReply):
                    continue  # foreign frame on a client connection: skip
                future = self._pending.pop(reply.request_id, None)
                if future is None and reply.request_id == 0 and self._pending:
                    # Pre-correlation node: it answers strictly in
                    # arrival order, so the oldest in-flight request
                    # owns this reply (dicts iterate in insert order).
                    future = self._pending.pop(next(iter(self._pending)))
                if future is not None and not future.done():
                    future.set_result(reply)
        except (OSError, ConnectionError, asyncio.CancelledError) as exc:
            error = exc
        finally:
            # The reply stream is gone, so the connection is unusable:
            # mark it closed so later request() calls fail fast instead
            # of writing into a dead socket and timing out.
            self._closed = True
            if self._writer is not None:
                self._writer.close()
            self._fail_pending(error)

    def _fail_pending(self, cause: Optional[BaseException]) -> None:
        """Fail every in-flight future (connection is gone)."""
        pending, self._pending = self._pending, {}
        if not pending:
            return
        exc = ConnectionError(
            f"{self.host}:{self.port} closed with "
            f"{len(pending)} request(s) in flight"
        )
        if cause is not None and not isinstance(cause, asyncio.CancelledError):
            exc.__cause__ = cause
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Close the socket; in-flight requests get ConnectionError.

        Idempotent, and safe after the reader task already declared the
        connection dead (each teardown step checks its own state).
        """
        self._closed = True
        self._user_closed = True
        task, self._reader_task = self._reader_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        writer, self._writer = self._writer, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass
        self._fail_pending(None)


# ----------------------------------------------------------------------
# Bulk-transfer client helpers
# ----------------------------------------------------------------------
async def put_file(
    conn: ClientConnection,
    key: str,
    data: bytes,
    piece_size: int = 65536,
    window: int = 16,
    timeout: Optional[float] = None,
) -> ClientReply:
    """Chunk ``data``, stream the pieces, commit the manifest.

    Pieces are pipelined on the connection (at most ``window`` in
    flight) as raw-bytes v2 frames; the final :class:`ClientPutFile`
    makes the node verify every staged piece hash before it stores the
    manifest and starts seeding.  Raises ``RuntimeError`` if any piece
    upload or the commit is refused.
    """
    manifest = swarm_manifest.build_manifest(data, piece_size)
    pieces = swarm_manifest.split_pieces(data, piece_size)
    content = manifest["content"]
    total = len(pieces)
    gate = asyncio.Semaphore(max(1, window))

    async def _send(index: int, piece: bytes) -> None:
        async with gate:
            reply = await conn.request(
                ClientPutPiece(content=content, index=index, total=total, data=piece),
                timeout,
            )
            if not reply.ok:
                raise RuntimeError(f"piece {index} refused: {reply.error}")

    await asyncio.gather(*(_send(i, p) for i, p in enumerate(pieces)))
    reply = await conn.request(
        ClientPutFile(
            key=key,
            content=content,
            length=len(data),
            piece_size=piece_size,
            pieces=tuple(manifest["pieces"]),
        ),
        timeout,
    )
    if not reply.ok:
        raise RuntimeError(f"put-file {key!r} refused: {reply.error}")
    return reply


async def get_file(
    conn: ClientConnection,
    key: str,
    window: int = 16,
    timeout: Optional[float] = None,
) -> bytes:
    """Fetch chunked content end to end, verifying every hash locally.

    Asks the node to swarm-fetch ``key``'s content, then pulls the
    pieces over the connection (pipelined, at most ``window`` in
    flight), checks each piece against the manifest's SHA-256 list, and
    checks the assembled bytes against the whole-content hash.  Raises
    ``RuntimeError`` on refusal or any integrity mismatch.
    """
    reply = await conn.request(ClientGetFile(key=key), timeout)
    if not reply.ok:
        raise RuntimeError(f"get-file {key!r} failed: {reply.error}")
    manifest = reply.payload["manifest"]
    if not swarm_manifest.is_manifest(manifest):
        raise RuntimeError(f"get-file {key!r}: node returned no manifest")
    content = manifest["content"]
    n = len(manifest["pieces"])
    got: Dict[int, bytes] = {}
    gate = asyncio.Semaphore(max(1, window))

    async def _fetch(index: int) -> None:
        async with gate:
            piece_reply = await conn.request(
                ClientGetPiece(content=content, index=index), timeout
            )
            if not piece_reply.ok:
                raise RuntimeError(f"piece {index} failed: {piece_reply.error}")
            piece = getattr(piece_reply, "data", b"")
            if not swarm_manifest.verify_piece(manifest, index, piece):
                raise RuntimeError(f"piece {index} failed hash verification")
            got[index] = piece

    await asyncio.gather(*(_fetch(i) for i in range(n)))
    try:
        return swarm_manifest.assemble(manifest, got)
    except ValueError as exc:
        raise RuntimeError(f"get-file {key!r}: {exc}") from exc


async def acall(
    host: str, port: int, msg: Message, timeout: float = 10.0
) -> ClientReply:
    """One-shot convenience: connect, send one verb, await the reply."""
    conn = ClientConnection(host, port, timeout=timeout)
    await conn.connect()
    try:
        return await conn.request(msg, timeout)
    finally:
        await conn.aclose()


def call(host: str, port: int, msg: Message, timeout: float = 10.0) -> ClientReply:
    """Blocking wrapper around :func:`acall` for CLI use."""
    return asyncio.run(acall(host, port, msg, timeout))
