"""Client verbs: request/reply messages between the CLI and a live node.

Protocol frames are fire-and-forget -- a peer never answers on the same
connection it received from.  The client verbs are different: ``put`` /
``get`` / ``status`` want an answer, so a node replies with a
:class:`ClientReply` frame on the *inbound* connection the request
arrived on.  They reuse the exact same codec and framing as protocol
messages but register in the reserved type-id band at
:data:`~repro.runtime.codec.CLIENT_TYPE_BASE` so they can never collide
with :func:`~repro.overlay.messages.wire_types` growth.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from ..overlay.messages import Message
from .codec import CLIENT_TYPE_BASE, WIRE_VERSION, MessageCodec, default_codec
from .aio_transport import read_frame

__all__ = [
    "ClientPut",
    "ClientGet",
    "ClientStatus",
    "ClientReply",
    "client_types",
    "runtime_codec",
    "acall",
    "call",
]


@dataclass(slots=True)
class ClientPut(Message):
    """Store ``value`` under ``key`` via the receiving node's data plane."""

    key: str = ""
    value: Any = None


@dataclass(slots=True)
class ClientGet(Message):
    """Look ``key`` up through the overlay; reply carries the value."""

    key: str = ""


@dataclass(slots=True)
class ClientStatus(Message):
    """Ask a node (or the bootstrap server) for a JSON status snapshot.

    ``include_metrics`` folds the node's full metrics-registry snapshot
    (the same data ``/metrics.json`` serves) into the reply payload
    under ``"metrics"``.
    """

    include_metrics: bool = False


@dataclass(slots=True)
class ClientReply(Message):
    """Uniform answer: ``ok`` plus either a payload or an error string."""

    ok: bool = False
    payload: Any = None
    error: Optional[str] = None


def client_types() -> tuple:
    """Client message classes in stable wire-registration order."""
    return (ClientPut, ClientGet, ClientStatus, ClientReply)


def runtime_codec(
    version: int = WIRE_VERSION, accept: Optional[Iterable[int]] = None
) -> MessageCodec:
    """The full live-runtime codec: every protocol message + client verbs.

    ``version``/``accept`` pass straight through to
    :class:`~repro.runtime.codec.MessageCodec`: ``version`` is the body
    format this codec *encodes*, ``accept`` the versions it decodes
    (both, by default, so mixed-version localnets interoperate).
    """
    codec = default_codec(version=version, accept=accept)
    for i, cls in enumerate(client_types()):
        codec.register(cls, CLIENT_TYPE_BASE + i)
    return codec


async def acall(
    host: str, port: int, msg: Message, timeout: float = 10.0
) -> ClientReply:
    """Send one client verb to a node and await its :class:`ClientReply`."""
    codec = runtime_codec()
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        writer.write(codec.frame(msg))
        await asyncio.wait_for(writer.drain(), timeout)
        payload = await asyncio.wait_for(read_frame(reader), timeout)
        if payload is None:
            raise ConnectionError(f"{host}:{port} closed without replying")
        reply = codec.decode(payload)
        if not isinstance(reply, ClientReply):
            raise ConnectionError(
                f"expected ClientReply, got {type(reply).__name__}"
            )
        return reply
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass


def call(host: str, port: int, msg: Message, timeout: float = 10.0) -> ClientReply:
    """Blocking wrapper around :func:`acall` for CLI use."""
    return asyncio.run(acall(host, port, msg, timeout))
