"""Client verbs: correlated request/reply messages to a live node.

Protocol frames are fire-and-forget -- a peer never answers on the same
connection it received from.  The client verbs are different: ``put`` /
``get`` / ``status`` want an answer, so a node replies with a
:class:`ClientReply` frame on the *inbound* connection the request
arrived on.  They reuse the exact same codec and framing as protocol
messages but register in the reserved type-id band at
:data:`~repro.runtime.codec.CLIENT_TYPE_BASE` so they can never collide
with :func:`~repro.overlay.messages.wire_types` growth.

**Request correlation** -- every request carries a connection-scoped
``request_id``, echoed verbatim on its :class:`ClientReply`.  The node
answers each request as it resolves, *not* in arrival order, so one TCP
connection can carry many concurrent in-flight operations
(:class:`ClientConnection` multiplexes them: futures keyed by request
id, completed out of order as replies land).  ``request_id 0`` is the
uncorrelated sentinel: a reply carrying it is matched to the oldest
in-flight request, which keeps a new client interoperable with a
pre-correlation node that answers serially.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional

from ..overlay.messages import Message
from .codec import CLIENT_TYPE_BASE, WIRE_VERSION, CodecError, MessageCodec, default_codec
from .aio_transport import frame_stream

__all__ = [
    "ClientPut",
    "ClientGet",
    "ClientStatus",
    "ClientReply",
    "ClientConnection",
    "client_types",
    "runtime_codec",
    "acall",
    "call",
]


@dataclass(slots=True)
class ClientPut(Message):
    """Store ``value`` under ``key`` via the receiving node's data plane."""

    key: str = ""
    value: Any = None
    request_id: int = 0  # connection-scoped correlation id (0 = none)


@dataclass(slots=True)
class ClientGet(Message):
    """Look ``key`` up through the overlay; reply carries the value."""

    key: str = ""
    request_id: int = 0  # connection-scoped correlation id (0 = none)


@dataclass(slots=True)
class ClientStatus(Message):
    """Ask a node (or the bootstrap server) for a JSON status snapshot.

    ``include_metrics`` folds the node's full metrics-registry snapshot
    (the same data ``/metrics.json`` serves) into the reply payload
    under ``"metrics"``.
    """

    include_metrics: bool = False
    request_id: int = 0  # connection-scoped correlation id (0 = none)


@dataclass(slots=True)
class ClientReply(Message):
    """Uniform answer: ``ok`` plus either a payload or an error string.

    ``request_id`` echoes the request's correlation id so a pipelined
    connection can match out-of-order replies to their requests.
    """

    ok: bool = False
    payload: Any = None
    error: Optional[str] = None
    request_id: int = 0


def client_types() -> tuple:
    """Client message classes in stable wire-registration order."""
    return (ClientPut, ClientGet, ClientStatus, ClientReply)


def runtime_codec(
    version: int = WIRE_VERSION, accept: Optional[Iterable[int]] = None
) -> MessageCodec:
    """The full live-runtime codec: every protocol message + client verbs.

    ``version``/``accept`` pass straight through to
    :class:`~repro.runtime.codec.MessageCodec`: ``version`` is the body
    format this codec *encodes*, ``accept`` the versions it decodes
    (both, by default, so mixed-version localnets interoperate).
    """
    codec = default_codec(version=version, accept=accept)
    for i, cls in enumerate(client_types()):
        codec.register(cls, CLIENT_TYPE_BASE + i)
    return codec


class ClientConnection:
    """One persistent TCP connection multiplexing concurrent client ops.

    Requests are assigned connection-scoped ids and written to the
    socket immediately; a single background reader task completes the
    matching future as each :class:`ClientReply` lands -- in whatever
    order the node resolves them.  Many coroutines may call
    :meth:`request` concurrently on the same connection; nothing is
    serialized but the socket writes themselves (each frame is one
    ``write`` call, so frames never interleave).

    Use as an async context manager, or ``connect()`` / ``aclose()``
    explicitly::

        async with ClientConnection(host, port) as conn:
            replies = await asyncio.gather(
                *(conn.request(ClientGet(key=k)) for k in keys)
            )

    On EOF, a decode error, or :meth:`aclose`, every in-flight future
    is failed with :class:`ConnectionError` -- futures never leak.

    ``retry=True`` adds a single bounded reconnect-and-retry for the
    *idempotent* verbs (:class:`ClientGet` / :class:`ClientStatus`):
    when such a request fails with :class:`ConnectionError` (reader
    died, node restarted, failover handoff), the connection is reopened
    once and the request re-sent.  Off by default -- puts and any
    explicit ``aclose()`` never retry, so non-idempotent operations are
    never silently repeated.
    """

    IDEMPOTENT_VERBS = (ClientGet, ClientStatus)

    def __init__(
        self,
        host: str,
        port: int,
        codec: Optional[MessageCodec] = None,
        timeout: float = 10.0,
        retry: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.codec = codec if codec is not None else runtime_codec()
        self._ids = itertools.count(1)  # 0 is the uncorrelated sentinel
        self._pending: Dict[int, asyncio.Future] = {}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._closed = False
        self._user_closed = False  # aclose() called: never reconnect
        self._conn_gen = 0  # bumped per successful reconnect
        self._reconnect_lock = asyncio.Lock()

    # ------------------------------------------------------------------
    async def connect(self, timeout: Optional[float] = None) -> "ClientConnection":
        """Open the socket and start the reply reader; idempotent."""
        if self._writer is not None:
            return self
        if self._closed:
            raise ConnectionError("connection already closed")
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            self.timeout if timeout is None else timeout,
        )
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_replies(), name=f"client-conn-{self.host}:{self.port}"
        )
        return self

    async def __aenter__(self) -> "ClientConnection":
        return await self.connect()

    async def __aexit__(self, *exc: object) -> None:
        await self.aclose()

    @property
    def inflight(self) -> int:
        """Requests currently awaiting their reply."""
        return len(self._pending)

    # ------------------------------------------------------------------
    async def request(self, msg: Message, timeout: Optional[float] = None) -> ClientReply:
        """Send one client verb; await its (possibly out-of-order) reply.

        With ``retry=True`` and an idempotent verb, one
        :class:`ConnectionError` triggers a single reconnect + re-send;
        every other failure (including timeouts) propagates unchanged.
        """
        retriable = self.retry and isinstance(msg, self.IDEMPOTENT_VERBS)
        attempts = 2 if retriable else 1
        for attempt in range(attempts):
            gen = self._conn_gen
            try:
                return await self._request_once(msg, timeout)
            except ConnectionError:
                if attempt + 1 >= attempts or self._user_closed:
                    raise
                await self._ensure_reconnected(gen)
        raise ConnectionError("unreachable")  # pragma: no cover

    async def _request_once(
        self, msg: Message, timeout: Optional[float] = None
    ) -> ClientReply:
        if self._writer is None or self._closed:
            raise ConnectionError(
                f"connection to {self.host}:{self.port} is not open"
            )
        rid = next(self._ids)
        msg.request_id = rid
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        try:
            self._writer.write(self.codec.frame(msg))
            await self._writer.drain()
            return await asyncio.wait_for(
                future, self.timeout if timeout is None else timeout
            )
        finally:
            self._pending.pop(rid, None)

    async def _ensure_reconnected(self, gen: int) -> None:
        """Reopen the socket once (retry path).

        Serialised behind a lock so concurrent failing requests share
        one reconnect: whoever arrives first (matching generation)
        tears down the dead reader/writer and dials again; later
        arrivals see the bumped generation and return immediately.
        """
        async with self._reconnect_lock:
            if self._user_closed:
                raise ConnectionError(
                    f"connection to {self.host}:{self.port} was closed"
                )
            if self._conn_gen != gen:
                return  # someone else already reconnected
            task, self._reader_task = self._reader_task, None
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            writer, self._writer = self._writer, None
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (OSError, ConnectionError):
                    pass
            self._reader = None
            self._closed = False
            await self.connect()
            self._conn_gen += 1

    async def _read_replies(self) -> None:
        assert self._reader is not None
        error: Optional[BaseException] = None
        try:
            async for payload in frame_stream(self._reader):
                try:
                    reply = self.codec.decode(payload)
                except CodecError as exc:
                    error = ConnectionError(f"undecodable reply frame: {exc}")
                    break
                if not isinstance(reply, ClientReply):
                    continue  # foreign frame on a client connection: skip
                future = self._pending.pop(reply.request_id, None)
                if future is None and reply.request_id == 0 and self._pending:
                    # Pre-correlation node: it answers strictly in
                    # arrival order, so the oldest in-flight request
                    # owns this reply (dicts iterate in insert order).
                    future = self._pending.pop(next(iter(self._pending)))
                if future is not None and not future.done():
                    future.set_result(reply)
        except (OSError, ConnectionError, asyncio.CancelledError) as exc:
            error = exc
        finally:
            # The reply stream is gone, so the connection is unusable:
            # mark it closed so later request() calls fail fast instead
            # of writing into a dead socket and timing out.
            self._closed = True
            if self._writer is not None:
                self._writer.close()
            self._fail_pending(error)

    def _fail_pending(self, cause: Optional[BaseException]) -> None:
        """Fail every in-flight future (connection is gone)."""
        pending, self._pending = self._pending, {}
        if not pending:
            return
        exc = ConnectionError(
            f"{self.host}:{self.port} closed with "
            f"{len(pending)} request(s) in flight"
        )
        if cause is not None and not isinstance(cause, asyncio.CancelledError):
            exc.__cause__ = cause
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Close the socket; in-flight requests get ConnectionError.

        Idempotent, and safe after the reader task already declared the
        connection dead (each teardown step checks its own state).
        """
        self._closed = True
        self._user_closed = True
        task, self._reader_task = self._reader_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        writer, self._writer = self._writer, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass
        self._fail_pending(None)


async def acall(
    host: str, port: int, msg: Message, timeout: float = 10.0
) -> ClientReply:
    """One-shot convenience: connect, send one verb, await the reply."""
    conn = ClientConnection(host, port, timeout=timeout)
    await conn.connect()
    try:
        return await conn.request(msg, timeout)
    finally:
        await conn.aclose()


def call(host: str, port: int, msg: Message, timeout: float = 10.0) -> ClientReply:
    """Blocking wrapper around :func:`acall` for CLI use."""
    return asyncio.run(acall(host, port, msg, timeout))
