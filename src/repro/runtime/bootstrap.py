"""The live bootstrap daemon: one :class:`BootstrapServer` over TCP.

Runs the *simulator's* server class unchanged; only the plumbing
differs.  Its packed listen endpoint becomes ``config.server_address``
for every peer that joins through it, which is all a peer needs to know
to enter the system (Section 3.2's "well-known server").
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..core.config import HybridConfig
from ..core.server import BootstrapServer
from ..overlay.idspace import IdSpace
from ..overlay.messages import Message
from .client import ClientReply, ClientStatus
from .node import NodeDaemon

__all__ = ["BootstrapNode"]


class BootstrapNode(NodeDaemon):
    """Daemon hosting the authoritative bootstrap/directory server."""

    def _make_actor(self) -> BootstrapServer:
        # The server's overlay address is wherever this daemon listens;
        # rewrite the config so the hosted server agrees with the
        # address peers will dial.
        self.config = self.config.with_changes(server_address=self.address)
        return BootstrapServer(
            host=0,
            engine=self.engine,
            transport=self.transport,
            idspace=IdSpace(self.config.id_bits),
            config=self.config,
            rng=np.random.default_rng(self.seed),
            trace=self.trace,
        )

    @property
    def server(self) -> BootstrapServer:
        return self.actor

    async def handle_client(self, msg: Message) -> ClientReply:
        if isinstance(msg, ClientStatus):
            payload = self.status_snapshot()
            if msg.include_metrics:
                payload["metrics"] = self.registry.snapshot()
            return ClientReply(ok=True, payload=payload)
        return await super().handle_client(msg)

    def status_snapshot(self) -> Dict[str, Any]:
        snap = self.server.directory_snapshot()
        snap["endpoint"] = f"{self.host}:{self.port}"
        snap["address"] = self.address
        snap["uptime_s"] = round(self.uptime(), 3)
        snap["codec_version"] = self.codec.version
        snap["codec"] = self.codec_snapshot()
        return snap
