"""Asyncio adapter for the simulator's timer surface.

Protocol code (peers, the bootstrap server, ``Timer`` /
``PeriodicTimer``) touches exactly two things on its ``engine``:
``engine.now`` (milliseconds) and ``engine.call_later(delay, fn, ...)``
returning a handle with ``cancel()`` / ``pending`` / ``time``.
:class:`LoopEngine` provides that same surface on top of a running
asyncio event loop, so the unmodified protocol core drives real
wall-clock timers in the live runtime.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional, Set

__all__ = ["LoopEngine", "LoopEvent"]


class LoopEvent:
    """Timer handle compatible with :class:`repro.sim.engine.Event`."""

    __slots__ = ("time", "_handle", "_engine", "_fired", "_cancelled")

    def __init__(self, engine: "LoopEngine", time: float) -> None:
        self.time = time
        self._engine = engine
        self._handle: Optional[asyncio.TimerHandle] = None
        self._fired = False
        self._cancelled = False

    @property
    def pending(self) -> bool:
        return not (self._fired or self._cancelled)

    def cancel(self) -> None:
        if self.pending:
            self._cancelled = True
            if self._handle is not None:
                self._handle.cancel()
            self._engine._events.discard(self)


class LoopEngine:
    """The ``Engine`` timer surface mapped onto ``loop.call_later``.

    ``now`` is milliseconds since this engine was created (protocol
    timeouts are configured in ms).  Outstanding timers are tracked so
    :meth:`close` can cancel them all during shutdown -- the live-node
    equivalent of the simulator simply being dropped.
    """

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self.loop = loop if loop is not None else asyncio.get_event_loop()
        self._t0 = self.loop.time()
        self._events: Set[LoopEvent] = set()
        self._closed = False

    @property
    def now(self) -> float:
        """Milliseconds elapsed since the engine started."""
        return (self.loop.time() - self._t0) * 1000.0

    def call_later(
        self, delay: float, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> LoopEvent:
        """Schedule ``fn(*args, **kwargs)`` after ``delay`` milliseconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        event = LoopEvent(self, self.now + delay)
        if self._closed:
            # Shutdown already started: hand back a dead handle so late
            # protocol callbacks (e.g. from a final message) are inert.
            event._cancelled = True
            return event

        def _fire() -> None:
            event._fired = True
            self._events.discard(event)
            fn(*args, **kwargs)

        event._handle = self.loop.call_later(delay / 1000.0, _fire)
        self._events.add(event)
        return event

    def close(self) -> None:
        """Cancel every outstanding timer; further schedules are inert."""
        self._closed = True
        for event in list(self._events):
            event.cancel()
        self._events.clear()
