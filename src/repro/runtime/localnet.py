"""In-process localnet: N live nodes on ephemeral localhost ports.

The harness tests and CI use to exercise the live runtime end to end
without shelling out N daemons: every node runs as asyncio tasks inside
one process, but all protocol traffic still crosses real TCP sockets
(each node has its own listener, transport pool and timers -- nothing
is shared except the event loop).

Typical use::

    net = LocalNet(t_peers=2, s_peers=2, seed=7)
    await net.start()          # boots bootstrap + peers, joins in order
    await net.wait_converged() # directory ring == live ring pointers
    ...
    await net.stop()           # clean teardown, no leaked tasks/sockets
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence

from ..core.config import HybridConfig
from .bootstrap import BootstrapNode
from .codec import WIRE_VERSION
from .node import PeerNode

__all__ = ["LocalNet", "fast_config"]


def fast_config(**overrides: object) -> HybridConfig:
    """A config with timers scaled for wall-clock tests.

    Protocol timeouts are in milliseconds of *protocol* time, which in
    the live runtime is real time -- the simulator's defaults (60 s
    lookup timeout, 1 s HELLO period) would make tests crawl.
    """
    base = dict(
        hello_period=100.0,
        neighbor_timeout=350.0,
        ack_suppress=50.0,
        election_grace=300.0,
        join_retry_timeout=800.0,
        lookup_timeout=2_000.0,
        max_refloods=1,
    )
    base.update(overrides)
    return HybridConfig(**base)


class LocalNet:
    """One bootstrap daemon plus ``t_peers + s_peers`` live peers."""

    def __init__(
        self,
        t_peers: int = 2,
        s_peers: int = 2,
        config: Optional[HybridConfig] = None,
        seed: int = 0,
        host: str = "127.0.0.1",
        codec_version: int = WIRE_VERSION,
        codec_versions: Optional[Sequence[int]] = None,
    ) -> None:
        if t_peers < 1:
            raise ValueError("need at least one t-peer to anchor the ring")
        self.t_peers = t_peers
        self.s_peers = s_peers
        self.host = host
        self.seed = seed
        self.config = config if config is not None else fast_config()
        # codec_version applies to every daemon; codec_versions (one
        # entry per peer, in join order) overrides it per node to build
        # deliberately mixed-version localnets for testing.
        self.codec_version = codec_version
        if codec_versions is not None and len(codec_versions) != t_peers + s_peers:
            raise ValueError(
                f"codec_versions needs {t_peers + s_peers} entries, "
                f"got {len(codec_versions)}"
            )
        self.codec_versions = codec_versions
        self.bootstrap: Optional[BootstrapNode] = None
        self.nodes: List[PeerNode] = []

    # ------------------------------------------------------------------
    async def start(self, join_timeout: float = 30.0) -> None:
        """Boot the bootstrap daemon, then join peers one at a time.

        Joins are sequential, matching the simulator's build phase: the
        first peer bootstraps the ring, later t-peers run the ring-walk
        join, s-peers attach to their assigned s-network.  Roles are
        forced through the server's ``preassigned_roles`` hook so the
        requested t/s split is exact regardless of the ``p_s`` ratio.
        """
        self.bootstrap = BootstrapNode(
            self.host, 0, self.config, seed=self.seed,
            codec_version=self.codec_version,
        )
        await self.bootstrap.start()
        live_config = self.bootstrap.config  # server_address now filled in

        roles = ["t"] * self.t_peers + ["s"] * self.s_peers
        for i, role in enumerate(roles):
            version = (
                self.codec_versions[i]
                if self.codec_versions is not None
                else self.codec_version
            )
            node = PeerNode(
                self.host, 0, live_config, seed=self.seed + 1 + i,
                codec_version=version,
            )
            await node.start()
            self.bootstrap.server.preassigned_roles[node.address] = role
            await node.join(timeout=join_timeout)
            self.nodes.append(node)

    # ------------------------------------------------------------------
    def _converged(self) -> bool:
        """Directory view == live peer state, for every peer."""
        assert self.bootstrap is not None
        directory = {
            addr: p_id for p_id, addr in self.bootstrap.server.ring.members()
        }
        t_nodes = [n for n in self.nodes if n.peer.role == "t"]
        s_nodes = [n for n in self.nodes if n.peer.role == "s"]
        if len(directory) != len(t_nodes):
            return False
        for node in t_nodes:
            peer = node.peer
            if directory.get(peer.address) != peer.p_id:
                return False
            pre, suc = self.bootstrap.server.ring.neighbors_of(peer.address)
            if peer.predecessor != pre[1] or peer.successor != suc[1]:
                return False
        for node in s_nodes:
            peer = node.peer
            if not peer.joined or peer.t_peer not in directory:
                return False
        return True

    async def wait_converged(self, timeout: float = 30.0) -> None:
        """Block until the live ring matches the directory (or raise)."""
        deadline = asyncio.get_running_loop().time() + timeout
        while not self._converged():
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError("localnet did not converge: " + self.describe())
            await asyncio.sleep(0.05)

    def describe(self) -> str:
        parts = []
        for node in self.nodes:
            p = node.peer
            parts.append(
                f"{node.host}:{node.port} role={p.role} joined={p.joined} "
                f"p_id={p.p_id}"
            )
        return "; ".join(parts)

    # ------------------------------------------------------------------
    def node_for_key(self, key: str, remote_from: PeerNode) -> PeerNode:
        """A node whose segment does NOT own ``key`` (for remote-get tests)."""
        d_id = remote_from.peer.idspace.hash_key(key)
        for node in self.nodes:
            if not node.peer.owns_locally(d_id):
                return node
        raise LookupError(f"every node owns {key!r} locally")

    def endpoints(self) -> Dict[str, object]:
        assert self.bootstrap is not None
        return {
            "bootstrap": f"{self.bootstrap.host}:{self.bootstrap.port}",
            "nodes": [f"{n.host}:{n.port}" for n in self.nodes],
        }

    def metrics_snapshots(self) -> Dict[str, Dict[str, object]]:
        """Registry snapshot per daemon, keyed by endpoint.

        The in-process equivalent of scraping ``/metrics.json`` from
        every node -- what the observability tests diff against a
        simulated run of the same topology.
        """
        daemons = ([self.bootstrap] if self.bootstrap is not None else []) + self.nodes
        return {
            f"{d.host}:{d.port}": d.registry.snapshot() for d in daemons
        }

    # ------------------------------------------------------------------
    async def stop(self) -> None:
        """Tear everything down; safe to call after partial start."""
        for node in reversed(self.nodes):
            await node.stop()
        self.nodes.clear()
        if self.bootstrap is not None:
            await self.bootstrap.stop()
            self.bootstrap = None
