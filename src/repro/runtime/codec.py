"""Length-prefixed binary wire formats for overlay messages.

The live runtime sends the *same* message dataclasses the simulator
delivers in-process (:mod:`repro.overlay.messages`) over real TCP
sockets.  Encoders are auto-derived per message class -- no per-message
hand-written serialization -- from the dataclass field list and the
type annotations.  Two body formats share one frame layout:

* **framing** -- each message is one frame: a 4-byte big-endian length
  followed by the payload (``struct``);
* **payload** -- a 1-byte format version, a 2-byte big-endian type id,
  then the field values in dataclass field order (``sender`` and
  ``hop_count`` from the :class:`Message` base first, subclass fields
  after, exactly as ``dataclasses.fields`` reports them);
* **v1 body** (:data:`WIRE_V1`) -- the field values as a compact JSON
  array.  ``bytes`` become ``{"__bytes__": <base64>}``; tuples are
  revived from JSON arrays using the field annotations so
  ``decode(encode(m)) == m`` holds exactly;
* **v2 body** (:data:`WIRE_V2`) -- the fast path: a per-class
  **precompiled packer** built at registration time from the same
  annotations.  Runs of fixed-width fields (``int`` -> ``!q``,
  ``float`` -> ``!d``, ``bool`` -> ``!?``) collapse into single
  :class:`struct.Struct` pack/unpack calls; ``str``/``bytes`` are
  ``!I``-length-prefixed; homogeneous tuples carry a ``!I`` count;
  fixed-arity tuples are laid out element by element; ``Optional`` adds
  a 1-byte presence flag; ``Any`` fields carry a length-prefixed JSON
  value (same adapters as v1).  Decoding slices a single
  :class:`memoryview` over the payload -- no intermediate copies;
* **fallback** -- a class whose annotations the v2 compiler does not
  understand, or a field value outside its fixed-width range (an int
  beyond 64 bits), is encoded as a v1 frame even by a v2 codec.  The
  version byte makes the choice explicit on the wire, so the decoder
  never guesses;
* **type ids** -- derived from :func:`repro.overlay.messages.wire_types`
  (position in ``__all__``), so ids are stable as long as that list is
  append-only; runtime-private messages (the client verbs) register in
  a reserved band above :data:`CLIENT_TYPE_BASE`.

The version byte gives forward compatibility: a decoder that sees a
version it does not accept (or an unknown type id) raises
:class:`CodecError` instead of misparsing.  By default a codec decodes
*both* formats regardless of which it encodes, so mixed-version
networks interoperate: each sender picks its own body format and every
receiver understands it.  Pass ``accept`` to build a strict
single-version decoder (the cross-version tests use this to prove a
foreign frame is rejected, never misread).

Everything here is stdlib-only (``struct`` + ``json``) and synchronous;
the asyncio plumbing lives in :mod:`repro.runtime.aio_transport`.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
from dataclasses import fields as dataclass_fields
from operator import attrgetter
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
    get_args,
    get_origin,
    get_type_hints,
)

from ..overlay.messages import Message, wire_types

__all__ = [
    "WIRE_V1",
    "WIRE_V2",
    "WIRE_VERSION",
    "MAX_FRAME",
    "CLIENT_TYPE_BASE",
    "CodecError",
    "MessageCodec",
    "default_codec",
    "pack_endpoint",
    "unpack_endpoint",
    "format_endpoint",
]

WIRE_V1 = 1  # JSON-array body
WIRE_V2 = 2  # precompiled struct-packed body
# The version new codecs encode with unless told otherwise.
WIRE_VERSION = WIRE_V2
_KNOWN_VERSIONS = (WIRE_V1, WIRE_V2)
# Hard cap on a single frame; a length prefix beyond this is treated as
# a corrupt/hostile stream rather than an allocation request.
MAX_FRAME = 16 * 1024 * 1024
# Type ids below this band belong to repro.overlay.messages (protocol
# messages, ids assigned from wire_types() order); the band at and
# above it is reserved for runtime-private messages (client verbs).
CLIENT_TYPE_BASE = 512

_LEN = struct.Struct("!I")
_HEAD = struct.Struct("!BH")
_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")


class CodecError(ValueError):
    """Raised on any encode/decode failure (unknown type, bad frame)."""


# ----------------------------------------------------------------------
# Overlay addresses <-> TCP endpoints
# ----------------------------------------------------------------------
# The protocol core addresses actors by int.  The live runtime packs a
# real IPv4 endpoint into that int -- (ip << 16) | port -- so any
# address learned from any message (entry peers, ring pointers, flood
# origins) is directly connectable without a separate address book.


def pack_endpoint(host: str, port: int) -> int:
    """Pack an IPv4 ``(host, port)`` endpoint into an overlay address."""
    if not (0 < port <= 0xFFFF):
        raise ValueError(f"port out of range: {port}")
    try:
        (ip,) = struct.unpack("!I", socket.inet_aton(host))
    except OSError as exc:
        raise ValueError(f"not an IPv4 address: {host!r}") from exc
    return (ip << 16) | port


def unpack_endpoint(address: int) -> Tuple[str, int]:
    """Recover the ``(host, port)`` endpoint packed into an address."""
    if address <= 0xFFFF:
        raise ValueError(f"address {address} does not encode an endpoint")
    host = socket.inet_ntoa(struct.pack("!I", (address >> 16) & 0xFFFFFFFF))
    return host, address & 0xFFFF


def format_endpoint(address: int) -> str:
    host, port = unpack_endpoint(address)
    return f"{host}:{port}"


# ----------------------------------------------------------------------
# JSON value adapters (v1 bodies and embedded ``Any`` values in v2)
# ----------------------------------------------------------------------
def _json_default(obj: Any) -> Any:
    if isinstance(obj, (bytes, bytearray)):
        return {"__bytes__": base64.b64encode(bytes(obj)).decode("ascii")}
    raise TypeError(f"{type(obj).__name__} is not wire-encodable")


def _json_object_hook(obj: Dict[str, Any]) -> Any:
    if len(obj) == 1 and "__bytes__" in obj:
        return base64.b64decode(obj["__bytes__"])
    return obj


def _reviver_for(hint: Any) -> Optional[Callable[[Any], Any]]:
    """Derive a v1 decode-side value reviver from a type annotation.

    Returns None when JSON round-trips the value unchanged (ints,
    floats, strs, bools, Any); otherwise a callable that restores the
    annotated shape (tuples, optionals of tuples).
    """
    origin = get_origin(hint)
    if origin is tuple:
        args = get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            elem = _reviver_for(args[0])
            if elem is None:
                return lambda v: tuple(v)
            return lambda v: tuple(elem(x) for x in v)
        per_slot = [_reviver_for(a) for a in args]
        return lambda v: tuple(
            x if r is None else r(x) for r, x in zip(per_slot, v)
        )
    if origin is Union:
        inner = [a for a in get_args(hint) if a is not type(None)]
        if len(inner) == 1:
            revive = _reviver_for(inner[0])
            if revive is not None:
                return lambda v: None if v is None else revive(v)
    return None


# ----------------------------------------------------------------------
# v2 packer compiler
# ----------------------------------------------------------------------
# A compiled plan is a list of steps executed in field order:
#   (_FIXED, struct.Struct, attrgetter, n_fields, field_names) -- a run
#       of consecutive fixed-width scalars packed/unpacked in one call;
#   (_VAR, pack_fn, unpack_fn, field_name) -- one variable-size field.
# pack_fn(value, out_bytearray) appends bytes; unpack_fn(buf, pos)
# returns (value, new_pos) and must bounds-check (memoryview slicing
# silently truncates, so every reader goes through _take).
# The plan is both executable as-is (_encode_v2/_decode_v2 interpret
# it) and the source for the per-class *generated* encode/decode
# functions (_compile_fast), which unroll the step loop into straight-
# line code -- the interpreted path stays as the reference and the
# fallback for classes the generator declines (__post_init__, frozen).

_FIXED = 0
_VAR = 1

_FIXED_FMT = {int: "q", float: "d", bool: "?"}

PackFn = Callable[[Any, bytearray], None]
UnpackFn = Callable[[Any, int], Tuple[Any, int]]


def _take(buf: Any, pos: int, n: int) -> Tuple[Any, int]:
    end = pos + n
    if end > len(buf):
        raise CodecError("truncated frame body")
    return buf[pos:end], end


def _pack_i64(v: Any, out: bytearray) -> None:
    out += _I64.pack(v)


def _unpack_i64(buf: Any, pos: int) -> Tuple[int, int]:
    (v,) = _I64.unpack_from(buf, pos)
    return v, pos + 8


def _pack_f64(v: Any, out: bytearray) -> None:
    out += _F64.pack(v)


def _unpack_f64(buf: Any, pos: int) -> Tuple[float, int]:
    (v,) = _F64.unpack_from(buf, pos)
    return v, pos + 8


def _pack_bool(v: Any, out: bytearray) -> None:
    out.append(1 if v else 0)


def _unpack_bool(buf: Any, pos: int) -> Tuple[bool, int]:
    if pos >= len(buf):
        raise CodecError("truncated frame body")
    return bool(buf[pos]), pos + 1


def _pack_str(v: Any, out: bytearray) -> None:
    raw = v.encode("utf-8")
    out += _U32.pack(len(raw))
    out += raw


def _unpack_str(buf: Any, pos: int) -> Tuple[str, int]:
    (n,) = _U32.unpack_from(buf, pos)
    raw, pos = _take(buf, pos + 4, n)
    try:
        return str(raw, "utf-8"), pos
    except UnicodeDecodeError as exc:
        raise CodecError(f"bad utf-8 string: {exc}") from exc


def _pack_bytes(v: Any, out: bytearray) -> None:
    out += _U32.pack(len(v))
    out += v


def _unpack_bytes(buf: Any, pos: int) -> Tuple[bytes, int]:
    (n,) = _U32.unpack_from(buf, pos)
    raw, pos = _take(buf, pos + 4, n)
    return bytes(raw), pos


def _pack_any(v: Any, out: bytearray) -> None:
    raw = json.dumps(v, separators=(",", ":"), default=_json_default).encode(
        "utf-8"
    )
    out += _U32.pack(len(raw))
    out += raw


def _unpack_any(buf: Any, pos: int) -> Tuple[Any, int]:
    (n,) = _U32.unpack_from(buf, pos)
    raw, pos = _take(buf, pos + 4, n)
    try:
        return json.loads(str(raw, "utf-8"), object_hook=_json_object_hook), pos
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"bad embedded JSON value: {exc}") from exc


def _homogeneous_tuple_codec(
    elem_pack: PackFn, elem_unpack: UnpackFn
) -> Tuple[PackFn, UnpackFn]:
    def pack(v: Any, out: bytearray) -> None:
        out += _U32.pack(len(v))
        for x in v:
            elem_pack(x, out)

    def unpack(buf: Any, pos: int) -> Tuple[tuple, int]:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        # Every element consumes >= 1 byte, so a count beyond the
        # remaining payload is corrupt -- reject before looping.
        if n > len(buf) - pos:
            raise CodecError("tuple count exceeds frame body")
        items = []
        for _ in range(n):
            x, pos = elem_unpack(buf, pos)
            items.append(x)
        return tuple(items), pos

    return pack, unpack


def _fixed_tuple_codec(
    parts: List[Tuple[PackFn, UnpackFn]]
) -> Tuple[PackFn, UnpackFn]:
    packs = [p for p, _ in parts]
    unpacks = [u for _, u in parts]
    arity = len(parts)

    def pack(v: Any, out: bytearray) -> None:
        if len(v) != arity:
            raise ValueError(f"expected {arity}-tuple, got {len(v)}")
        for fn, x in zip(packs, v):
            fn(x, out)

    def unpack(buf: Any, pos: int) -> Tuple[tuple, int]:
        items = []
        for fn in unpacks:
            x, pos = fn(buf, pos)
            items.append(x)
        return tuple(items), pos

    return pack, unpack


def _optional_codec(
    inner_pack: PackFn, inner_unpack: UnpackFn
) -> Tuple[PackFn, UnpackFn]:
    def pack(v: Any, out: bytearray) -> None:
        if v is None:
            out.append(0)
        else:
            out.append(1)
            inner_pack(v, out)

    def unpack(buf: Any, pos: int) -> Tuple[Any, int]:
        if pos >= len(buf):
            raise CodecError("truncated frame body")
        flag = buf[pos]
        pos += 1
        if flag == 0:
            return None, pos
        if flag != 1:
            raise CodecError(f"bad optional presence flag {flag}")
        return inner_unpack(buf, pos)

    return pack, unpack


def _var_codec_for(hint: Any) -> Optional[Tuple[PackFn, UnpackFn]]:
    """(pack, unpack) for one annotation, or None if not derivable."""
    if hint is Any:
        return _pack_any, _unpack_any
    if hint is bool:
        return _pack_bool, _unpack_bool
    if hint is int:
        return _pack_i64, _unpack_i64
    if hint is float:
        return _pack_f64, _unpack_f64
    if hint is str:
        return _pack_str, _unpack_str
    if hint is bytes:
        return _pack_bytes, _unpack_bytes
    origin = get_origin(hint)
    if origin is tuple:
        args = get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            elem = _var_codec_for(args[0])
            if elem is None:
                return None
            return _homogeneous_tuple_codec(*elem)
        parts = [_var_codec_for(a) for a in args]
        if any(p is None for p in parts):
            return None
        return _fixed_tuple_codec(parts)  # type: ignore[arg-type]
    if origin is Union:
        args = get_args(hint)
        if type(None) in args:
            inner = [a for a in args if a is not type(None)]
            if len(inner) == 1:
                part = _var_codec_for(inner[0])
                if part is None:
                    return None
                return _optional_codec(*part)
    return None


def _compile_plan(
    names: List[str], hints: Dict[str, Any]
) -> Optional[List[tuple]]:
    """The v2 packer plan for a field list, or None if underivable."""
    steps: List[tuple] = []
    run_fmt: List[str] = []
    run_names: List[str] = []

    def flush_run() -> None:
        if run_names:
            steps.append(
                (
                    _FIXED,
                    struct.Struct("!" + "".join(run_fmt)),
                    attrgetter(*run_names),
                    len(run_names),
                    tuple(run_names),
                )
            )
            run_fmt.clear()
            run_names.clear()

    for name in names:
        hint = hints.get(name, Any)
        code = _FIXED_FMT.get(hint)
        if code is not None:
            run_fmt.append(code)
            run_names.append(name)
            continue
        pair = _var_codec_for(hint)
        if pair is None:
            return None  # unknown shape: the whole class stays on v1
        flush_run()
        steps.append((_VAR, pair[0], pair[1], name))
    flush_run()
    return steps


def _compile_fast(cls: type, plan: List[tuple], head_v2: bytes):
    """Generate straight-line encode/decode functions from a plan.

    Returns ``(fast_encode, fast_decode)`` or ``(None, None)`` when the
    class needs the interpreted path (``__post_init__`` hooks or frozen
    classes, whose construction the decoder cannot bypass).  The
    generated code does exactly what the plan interpreter does -- same
    byte layout, same exceptions -- minus the per-field dispatch: fixed
    runs become one bound ``pack``/``unpack_from`` call, the decoder
    builds the instance via ``object.__new__`` and assigns every field
    (including ``init=False`` ones) directly.
    """
    if hasattr(cls, "__post_init__") or cls.__dataclass_params__.frozen:
        return None, None
    ns: Dict[str, Any] = {
        "_CodecError": CodecError,
        "_serr": struct.error,
        "_new": object.__new__,
        "_cls": cls,
        "_head": head_v2,
        "_len": len,
    }
    enc_terms: List[str] = []  # expressions appended to the output
    dec_parse: List[str] = []  # statements that parse the buffer
    dec_fields: List[Tuple[str, str]] = []  # (field, local) assignments
    for si, step in enumerate(plan):
        if step[0] == _FIXED:
            ns[f"p{si}"] = step[1].pack
            ns[f"u{si}"] = step[1].unpack_from
            locals_ = [f"f{si}_{i}" for i in range(step[3])]
            attrs = ", ".join(f"msg.{n}" for n in step[4])
            enc_terms.append(f"p{si}({attrs})")
            target = ", ".join(locals_) + ("," if step[3] == 1 else "")
            dec_parse.append(f"{target} = u{si}(buf, pos)")
            dec_parse.append(f"pos += {step[1].size}")
            dec_fields.extend(zip(step[4], locals_))
        else:
            ns[f"vp{si}"] = step[1]
            ns[f"vu{si}"] = step[2]
            enc_terms.append((f"vp{si}(msg.{step[3]}, out)", True))
            dec_parse.append(f"f{si}, pos = vu{si}(buf, pos)")
            dec_fields.append((step[3], f"f{si}"))

    # Encode: all-fixed plans collapse to one concatenation; plans with
    # variable fields accumulate into a bytearray like the interpreter.
    if all(isinstance(t, str) for t in enc_terms):
        body = " + ".join(["_head"] + enc_terms) if enc_terms else "_head"
        enc_src = f"def _enc(msg):\n    return {body}\n"
    else:
        lines = ["def _enc(msg):", "    out = bytearray(_head)"]
        for term in enc_terms:
            if isinstance(term, str):
                lines.append(f"    out += {term}")
            else:
                lines.append(f"    {term[0]}")
        lines.append("    return bytes(out)")
        enc_src = "\n".join(lines) + "\n"

    dec_lines = [
        "def _dec(buf):",
        "    try:",
        f"        pos = {_HEAD.size}",
    ]
    dec_lines += [f"        {stmt}" for stmt in dec_parse]
    dec_lines += [
        "    except _serr as exc:",
        f"        raise _CodecError("
        f"f'truncated {cls.__name__} body: {{exc}}') from exc",
        "    if pos != _len(buf):",
        f"        raise _CodecError(f'{{_len(buf) - pos}} trailing bytes "
        f"after {cls.__name__}')",
        "    msg = _new(_cls)",
    ]
    dec_lines += [f"    msg.{name} = {local}" for name, local in dec_fields]
    dec_lines.append("    return msg")
    dec_src = "\n".join(dec_lines) + "\n"

    exec(enc_src + dec_src, ns)  # noqa: S102 - fixed template, no user input
    return ns["_enc"], ns["_dec"]


class _Entry:
    """Per-class codec entry: field order, v1 revivers, v2 packer plan."""

    __slots__ = (
        "cls",
        "type_id",
        "names",
        "init_idx",
        "extra",
        "revivers",
        "plan",
        "head_v1",
        "head_v2",
        "fast_encode",
        "fast_decode",
    )

    def __init__(self, cls: type, type_id: int) -> None:
        self.cls = cls
        self.type_id = type_id
        flds = dataclass_fields(cls)
        self.names: List[str] = [f.name for f in flds]
        # Decoded values arrive as a list in field order; messages are
        # rebuilt positionally -- init fields straight into the
        # constructor, init=False fields (sender/hop_count from the
        # Message base) via setattr afterwards.
        self.init_idx: Tuple[int, ...] = tuple(
            i for i, f in enumerate(flds) if f.init
        )
        self.extra: Tuple[Tuple[int, str], ...] = tuple(
            (i, f.name) for i, f in enumerate(flds) if not f.init
        )
        hints = get_type_hints(cls)
        self.revivers: List[Optional[Callable[[Any], Any]]] = [
            _reviver_for(hints.get(f.name, Any)) for f in flds
        ]
        self.plan = _compile_plan(self.names, hints)
        self.head_v1 = _HEAD.pack(WIRE_V1, type_id)
        self.head_v2 = _HEAD.pack(WIRE_V2, type_id)
        if self.plan is not None:
            self.fast_encode, self.fast_decode = _compile_fast(
                cls, self.plan, self.head_v2
            )
        else:
            self.fast_encode = self.fast_decode = None


class MessageCodec:
    """Registry of message classes plus the auto-derived encoders.

    Registration is keyed by message class; ids must be unique and the
    class must be a :class:`Message` dataclass.  :func:`default_codec`
    pre-registers every protocol message; callers with runtime-private
    messages register them on top (ids >= :data:`CLIENT_TYPE_BASE`).

    Parameters
    ----------
    version:
        The body format :meth:`encode` emits: :data:`WIRE_V2` (default,
        the struct-packed fast path) or :data:`WIRE_V1` (JSON).  A v2
        codec still emits v1 frames for classes without a compiled plan
        and for values outside the packed layout.
    accept:
        Versions :meth:`decode` understands.  Defaults to *both* so
        mixed-version networks interoperate; pass ``(WIRE_V2,)`` (or
        ``(WIRE_V1,)``) for a strict single-version decoder that raises
        :class:`CodecError` on foreign frames.
    max_frame_size:
        Upper bound on a single frame's payload, enforced symmetrically:
        :meth:`frame` refuses to emit a larger frame and :meth:`decode`
        refuses to parse one.  The u32 length prefix would otherwise
        admit up to 4 GiB; anything past this bound is treated as a
        corrupt or hostile stream, not an allocation request.  Defaults
        to :data:`MAX_FRAME` (16 MiB).
    """

    def __init__(
        self,
        version: int = WIRE_VERSION,
        accept: Optional[Iterable[int]] = None,
        max_frame_size: int = MAX_FRAME,
    ) -> None:
        if version not in _KNOWN_VERSIONS:
            raise CodecError(f"unknown wire version {version}")
        if max_frame_size < _HEAD.size:
            raise CodecError(
                f"max_frame_size must be >= {_HEAD.size}, got {max_frame_size}"
            )
        self.max_frame_size = max_frame_size
        accepted = _KNOWN_VERSIONS if accept is None else tuple(accept)
        for v in accepted:
            if v not in _KNOWN_VERSIONS:
                raise CodecError(f"unknown wire version {v}")
        if not accepted:
            raise CodecError("codec must accept at least one version")
        self.version = version
        self.accepted_versions = frozenset(accepted)
        self._by_class: Dict[type, _Entry] = {}
        self._by_id: Dict[int, _Entry] = {}

    def register(self, cls: type, type_id: int) -> None:
        if not (isinstance(cls, type) and issubclass(cls, Message)):
            raise CodecError(f"{cls!r} is not a Message subclass")
        if cls in self._by_class:
            raise CodecError(f"{cls.__name__} already registered")
        if type_id in self._by_id:
            raise CodecError(f"type id {type_id} already taken")
        if not (0 <= type_id <= 0xFFFF):
            raise CodecError(f"type id {type_id} out of range")
        entry = _Entry(cls, type_id)
        self._by_class[cls] = entry
        self._by_id[type_id] = entry

    def registered_classes(self) -> Tuple[type, ...]:
        return tuple(self._by_class)

    def type_id_of(self, cls: type) -> int:
        entry = self._by_class.get(cls)
        if entry is None:
            raise CodecError(f"{cls.__name__} is not registered")
        return entry.type_id

    def has_v2_layout(self, cls: type) -> bool:
        """True when ``cls`` has a compiled struct plan (no v1 fallback)."""
        entry = self._by_class.get(cls)
        if entry is None:
            raise CodecError(f"{cls.__name__} is not registered")
        return entry.plan is not None

    # ------------------------------------------------------------------
    # Encode
    # ------------------------------------------------------------------
    def encode(self, msg: Message, version: Optional[int] = None) -> bytes:
        """Payload bytes (no length prefix) for one message.

        ``version`` overrides the codec's configured body format for
        this one message (the bench and the cross-version tests use it;
        the transport always encodes at the configured version).
        """
        entry = self._by_class.get(type(msg))
        if entry is None:
            raise CodecError(f"{type(msg).__name__} is not registered")
        v = self.version if version is None else version
        if v == WIRE_V2 and entry.plan is not None:
            try:
                if entry.fast_encode is not None:
                    return entry.fast_encode(msg)
                return self._encode_v2(entry, msg)
            except CodecError:
                raise
            except (struct.error, OverflowError, TypeError, ValueError):
                # A value the packed layout cannot carry (int beyond 64
                # bits, wrong arity, non-utf8 str): fall back to the
                # JSON body, which either carries it or raises a real
                # CodecError below.
                pass
        elif v not in _KNOWN_VERSIONS:
            raise CodecError(f"unknown wire version {v}")
        return self._encode_v1(entry, msg)

    def _encode_v1(self, entry: _Entry, msg: Message) -> bytes:
        try:
            body = json.dumps(
                [getattr(msg, name) for name in entry.names],
                separators=(",", ":"),
                default=_json_default,
            ).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise CodecError(
                f"{type(msg).__name__} payload is not wire-encodable: {exc}"
            ) from exc
        return entry.head_v1 + body

    def _encode_v2(self, entry: _Entry, msg: Message) -> bytes:
        out = bytearray(entry.head_v2)
        for step in entry.plan:  # type: ignore[union-attr]
            if step[0] == _FIXED:
                if step[3] == 1:
                    out += step[1].pack(step[2](msg))
                else:
                    out += step[1].pack(*step[2](msg))
            else:
                step[1](getattr(msg, step[3]), out)
        return bytes(out)

    def frame(self, msg: Message, version: Optional[int] = None) -> bytes:
        """Length-prefixed frame ready to write to a socket."""
        payload = self.encode(msg, version)
        if len(payload) > self.max_frame_size:
            raise CodecError(
                f"frame too large: {len(payload)} bytes exceeds "
                f"max_frame_size {self.max_frame_size}"
            )
        return _LEN.pack(len(payload)) + payload

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def decode(self, payload: Any) -> Message:
        """Rebuild the message from payload bytes (no length prefix).

        Accepts any bytes-like object (``bytes``, ``bytearray``,
        ``memoryview``); all v2 slicing happens through one memoryview,
        so nothing is copied on the fast path.
        """
        if len(payload) > self.max_frame_size:
            raise CodecError(
                f"frame of {len(payload)} bytes exceeds "
                f"max_frame_size {self.max_frame_size}"
            )
        if len(payload) < _HEAD.size:
            raise CodecError("truncated payload")
        version, type_id = _HEAD.unpack_from(payload)
        if version not in self.accepted_versions:
            raise CodecError(f"unsupported wire version {version}")
        entry = self._by_id.get(type_id)
        if entry is None:
            raise CodecError(f"unknown message type id {type_id}")
        if version == WIRE_V2:
            if entry.fast_decode is not None:
                return entry.fast_decode(payload)
            values = self._decode_v2(entry, payload)
        else:
            values = self._decode_v1(entry, payload)
        try:
            msg = entry.cls(*[values[i] for i in entry.init_idx])
        except (TypeError, ValueError) as exc:
            raise CodecError(f"cannot rebuild {entry.cls.__name__}: {exc}") from exc
        for i, name in entry.extra:  # sender / hop_count (init=False)
            setattr(msg, name, values[i])
        return msg

    def _decode_v1(self, entry: _Entry, payload: Any) -> List[Any]:
        body = payload[_HEAD.size :]
        if isinstance(body, memoryview):  # json.loads cannot take one
            body = bytes(body)
        try:
            values = json.loads(
                body.decode("utf-8"), object_hook=_json_object_hook
            )
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"bad message body: {exc}") from exc
        if not isinstance(values, list) or len(values) != len(entry.names):
            raise CodecError(
                f"{entry.cls.__name__} expects {len(entry.names)} fields, "
                f"got {len(values) if isinstance(values, list) else 'non-list'}"
            )
        return [
            value if (revive is None or value is None) else revive(value)
            for revive, value in zip(entry.revivers, values)
        ]

    def _decode_v2(self, entry: _Entry, payload: Any) -> List[Any]:
        if entry.plan is None:
            raise CodecError(f"{entry.cls.__name__} has no v2 wire layout")
        buf = payload if isinstance(payload, memoryview) else memoryview(payload)
        pos = _HEAD.size
        values: List[Any] = []
        try:
            for step in entry.plan:
                if step[0] == _FIXED:
                    values.extend(step[1].unpack_from(buf, pos))
                    pos += step[1].size
                else:
                    v, pos = step[2](buf, pos)
                    values.append(v)
        except struct.error as exc:
            raise CodecError(
                f"truncated {entry.cls.__name__} body: {exc}"
            ) from exc
        if pos != len(buf):
            raise CodecError(
                f"{len(buf) - pos} trailing bytes after {entry.cls.__name__}"
            )
        return values


def default_codec(
    version: int = WIRE_VERSION,
    accept: Optional[Iterable[int]] = None,
    max_frame_size: int = MAX_FRAME,
) -> MessageCodec:
    """A codec with every protocol message registered.

    Type ids are ``1 + position`` in :func:`wire_types` order (0 is
    reserved), so both ends of a connection derive the same table from
    the message module alone.
    """
    codec = MessageCodec(version=version, accept=accept, max_frame_size=max_frame_size)
    for i, cls in enumerate(wire_types()):
        codec.register(cls, 1 + i)
    return codec
