"""Length-prefixed binary wire format for overlay messages.

The live runtime sends the *same* message dataclasses the simulator
delivers in-process (:mod:`repro.overlay.messages`) over real TCP
sockets.  Encoders are auto-derived per message class -- no per-message
hand-written serialization -- from the dataclass field list and the
type annotations:

* **framing** -- each message is one frame: a 4-byte big-endian length
  followed by the payload (``struct``);
* **payload** -- a 1-byte format version, a 2-byte big-endian type id,
  then the field values as a compact JSON array in dataclass field
  order (``sender`` and ``hop_count`` from the :class:`Message` base
  first, subclass fields after, exactly as ``dataclasses.fields``
  reports them);
* **type ids** -- derived from :func:`repro.overlay.messages.wire_types`
  (position in ``__all__``), so ids are stable as long as that list is
  append-only; runtime-private messages (the client verbs) register in
  a reserved band above :data:`CLIENT_TYPE_BASE`;
* **bytes values** -- JSON has no bytes type, so ``bytes`` payloads are
  encoded as ``{"__bytes__": <base64>}`` and revived on decode;
* **tuples** -- JSON arrays decode as lists; fields annotated as tuples
  (including nested shapes like ``Tuple[Tuple[int, int], ...]``) are
  revived to tuples so ``decode(encode(m)) == m`` holds exactly.

The version byte gives forward compatibility: a decoder that sees an
unknown version (or type id) raises :class:`CodecError` instead of
misparsing, and a future format revision can bump the byte without
breaking the frame layout.

Everything here is stdlib-only (``struct`` + ``json``) and synchronous;
the asyncio plumbing lives in :mod:`repro.runtime.aio_transport`.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
from dataclasses import fields as dataclass_fields
from typing import Any, Callable, Dict, List, Optional, Tuple, Union, get_args, get_origin, get_type_hints

from ..overlay.messages import Message, wire_types

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME",
    "CLIENT_TYPE_BASE",
    "CodecError",
    "MessageCodec",
    "default_codec",
    "pack_endpoint",
    "unpack_endpoint",
    "format_endpoint",
]

WIRE_VERSION = 1
# Hard cap on a single frame; a length prefix beyond this is treated as
# a corrupt/hostile stream rather than an allocation request.
MAX_FRAME = 16 * 1024 * 1024
# Type ids below this band belong to repro.overlay.messages (protocol
# messages, ids assigned from wire_types() order); the band at and
# above it is reserved for runtime-private messages (client verbs).
CLIENT_TYPE_BASE = 512

_LEN = struct.Struct("!I")
_HEAD = struct.Struct("!BH")


class CodecError(ValueError):
    """Raised on any encode/decode failure (unknown type, bad frame)."""


# ----------------------------------------------------------------------
# Overlay addresses <-> TCP endpoints
# ----------------------------------------------------------------------
# The protocol core addresses actors by int.  The live runtime packs a
# real IPv4 endpoint into that int -- (ip << 16) | port -- so any
# address learned from any message (entry peers, ring pointers, flood
# origins) is directly connectable without a separate address book.


def pack_endpoint(host: str, port: int) -> int:
    """Pack an IPv4 ``(host, port)`` endpoint into an overlay address."""
    if not (0 < port <= 0xFFFF):
        raise ValueError(f"port out of range: {port}")
    try:
        (ip,) = struct.unpack("!I", socket.inet_aton(host))
    except OSError as exc:
        raise ValueError(f"not an IPv4 address: {host!r}") from exc
    return (ip << 16) | port


def unpack_endpoint(address: int) -> Tuple[str, int]:
    """Recover the ``(host, port)`` endpoint packed into an address."""
    if address <= 0xFFFF:
        raise ValueError(f"address {address} does not encode an endpoint")
    host = socket.inet_ntoa(struct.pack("!I", (address >> 16) & 0xFFFFFFFF))
    return host, address & 0xFFFF


def format_endpoint(address: int) -> str:
    host, port = unpack_endpoint(address)
    return f"{host}:{port}"


# ----------------------------------------------------------------------
# JSON value adapters
# ----------------------------------------------------------------------
def _json_default(obj: Any) -> Any:
    if isinstance(obj, (bytes, bytearray)):
        return {"__bytes__": base64.b64encode(bytes(obj)).decode("ascii")}
    raise TypeError(f"{type(obj).__name__} is not wire-encodable")


def _json_object_hook(obj: Dict[str, Any]) -> Any:
    if len(obj) == 1 and "__bytes__" in obj:
        return base64.b64decode(obj["__bytes__"])
    return obj


def _reviver_for(hint: Any) -> Optional[Callable[[Any], Any]]:
    """Derive a decode-side value reviver from a type annotation.

    Returns None when JSON round-trips the value unchanged (ints,
    floats, strs, bools, Any); otherwise a callable that restores the
    annotated shape (tuples, optionals of tuples).
    """
    origin = get_origin(hint)
    if origin is tuple:
        args = get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            elem = _reviver_for(args[0])
            if elem is None:
                return lambda v: tuple(v)
            return lambda v: tuple(elem(x) for x in v)
        per_slot = [_reviver_for(a) for a in args]
        return lambda v: tuple(
            x if r is None else r(x) for r, x in zip(per_slot, v)
        )
    if origin is Union:
        inner = [a for a in get_args(hint) if a is not type(None)]
        if len(inner) == 1:
            revive = _reviver_for(inner[0])
            if revive is not None:
                return lambda v: None if v is None else revive(v)
    return None


class _Entry:
    """Per-class codec entry: field order and decode revivers."""

    __slots__ = ("cls", "type_id", "names", "init_names", "extra_names", "revivers")

    def __init__(self, cls: type, type_id: int) -> None:
        self.cls = cls
        self.type_id = type_id
        flds = dataclass_fields(cls)
        self.names: List[str] = [f.name for f in flds]
        self.init_names: List[str] = [f.name for f in flds if f.init]
        self.extra_names: List[str] = [f.name for f in flds if not f.init]
        hints = get_type_hints(cls)
        self.revivers: List[Optional[Callable[[Any], Any]]] = [
            _reviver_for(hints.get(f.name, Any)) for f in flds
        ]


class MessageCodec:
    """Registry of message classes plus the auto-derived encoders.

    Registration is keyed by message class; ids must be unique and the
    class must be a :class:`Message` dataclass.  :func:`default_codec`
    pre-registers every protocol message; callers with runtime-private
    messages register them on top (ids >= :data:`CLIENT_TYPE_BASE`).
    """

    def __init__(self) -> None:
        self._by_class: Dict[type, _Entry] = {}
        self._by_id: Dict[int, _Entry] = {}

    def register(self, cls: type, type_id: int) -> None:
        if not (isinstance(cls, type) and issubclass(cls, Message)):
            raise CodecError(f"{cls!r} is not a Message subclass")
        if cls in self._by_class:
            raise CodecError(f"{cls.__name__} already registered")
        if type_id in self._by_id:
            raise CodecError(f"type id {type_id} already taken")
        if not (0 <= type_id <= 0xFFFF):
            raise CodecError(f"type id {type_id} out of range")
        entry = _Entry(cls, type_id)
        self._by_class[cls] = entry
        self._by_id[type_id] = entry

    def registered_classes(self) -> Tuple[type, ...]:
        return tuple(self._by_class)

    def type_id_of(self, cls: type) -> int:
        entry = self._by_class.get(cls)
        if entry is None:
            raise CodecError(f"{cls.__name__} is not registered")
        return entry.type_id

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------
    def encode(self, msg: Message) -> bytes:
        """Payload bytes (no length prefix) for one message."""
        entry = self._by_class.get(type(msg))
        if entry is None:
            raise CodecError(f"{type(msg).__name__} is not registered")
        try:
            body = json.dumps(
                [getattr(msg, name) for name in entry.names],
                separators=(",", ":"),
                default=_json_default,
            ).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise CodecError(
                f"{type(msg).__name__} payload is not wire-encodable: {exc}"
            ) from exc
        return _HEAD.pack(WIRE_VERSION, entry.type_id) + body

    def frame(self, msg: Message) -> bytes:
        """Length-prefixed frame ready to write to a socket."""
        payload = self.encode(msg)
        if len(payload) > MAX_FRAME:
            raise CodecError(f"frame too large: {len(payload)} bytes")
        return _LEN.pack(len(payload)) + payload

    def decode(self, payload: bytes) -> Message:
        """Rebuild the message from payload bytes (no length prefix)."""
        if len(payload) < _HEAD.size:
            raise CodecError("truncated payload")
        version, type_id = _HEAD.unpack_from(payload)
        if version != WIRE_VERSION:
            raise CodecError(f"unsupported wire version {version}")
        entry = self._by_id.get(type_id)
        if entry is None:
            raise CodecError(f"unknown message type id {type_id}")
        try:
            values = json.loads(
                payload[_HEAD.size :].decode("utf-8"),
                object_hook=_json_object_hook,
            )
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"bad message body: {exc}") from exc
        if not isinstance(values, list) or len(values) != len(entry.names):
            raise CodecError(
                f"{entry.cls.__name__} expects {len(entry.names)} fields, "
                f"got {len(values) if isinstance(values, list) else 'non-list'}"
            )
        revived = {}
        for name, revive, value in zip(entry.names, entry.revivers, values):
            revived[name] = value if (revive is None or value is None) else revive(value)
        try:
            msg = entry.cls(**{n: revived[n] for n in entry.init_names})
        except (TypeError, ValueError) as exc:
            raise CodecError(f"cannot rebuild {entry.cls.__name__}: {exc}") from exc
        for name in entry.extra_names:  # sender / hop_count (init=False)
            setattr(msg, name, revived[name])
        return msg


def default_codec() -> MessageCodec:
    """A codec with every protocol message registered.

    Type ids are ``1 + position`` in :func:`wire_types` order (0 is
    reserved), so both ends of a connection derive the same table from
    the message module alone.
    """
    codec = MessageCodec()
    for i, cls in enumerate(wire_types()):
        codec.register(cls, 1 + i)
    return codec
