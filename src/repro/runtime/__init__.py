"""Live runtime: the hybrid overlay over real asyncio TCP.

The protocol core (:mod:`repro.core`, :mod:`repro.overlay`) is shared
verbatim with the simulator; this package swaps the plumbing:

==================  =============================  ==========================
surface             simulator                      live runtime
==================  =============================  ==========================
timers              :class:`repro.sim.engine.Engine`  :class:`~repro.runtime.loop_engine.LoopEngine`
message delivery    :class:`repro.overlay.transport.Transport`  :class:`~repro.runtime.aio_transport.AioTransport`
addresses           arbitrary ints                 packed ``(ip, port)`` endpoints
wire format         (none -- in-process objects)   :mod:`repro.runtime.codec`
==================  =============================  ==========================

Entry points: ``repro serve`` / ``repro node`` / ``repro put`` /
``repro get`` / ``repro status`` / ``repro top`` on the CLI,
:class:`~repro.runtime.localnet.LocalNet` for in-process multi-node
tests.  Every daemon also serves ``/metrics`` + ``/healthz`` over HTTP
on its protocol port (see :mod:`repro.obs` and docs/OBSERVABILITY.md).
"""

from .aio_transport import AioTransport
from .bootstrap import BootstrapNode
from .client import (
    ClientConnection,
    ClientGet,
    ClientGetFile,
    ClientGetPiece,
    ClientPieceReply,
    ClientPut,
    ClientPutFile,
    ClientPutPiece,
    ClientReply,
    ClientStatus,
    acall,
    call,
    get_file,
    put_file,
    runtime_codec,
)
from .codec import (
    WIRE_V1,
    WIRE_V2,
    WIRE_VERSION,
    CodecError,
    MessageCodec,
    default_codec,
    format_endpoint,
    pack_endpoint,
    unpack_endpoint,
)
from .localnet import LocalNet, fast_config
from .loop_engine import LoopEngine
from .node import NodeDaemon, PeerNode, RuntimePeer

__all__ = [
    "AioTransport",
    "BootstrapNode",
    "ClientConnection",
    "ClientGet",
    "ClientGetFile",
    "ClientGetPiece",
    "ClientPieceReply",
    "ClientPut",
    "ClientPutFile",
    "ClientPutPiece",
    "ClientReply",
    "ClientStatus",
    "CodecError",
    "LocalNet",
    "LoopEngine",
    "MessageCodec",
    "NodeDaemon",
    "PeerNode",
    "RuntimePeer",
    "WIRE_V1",
    "WIRE_V2",
    "WIRE_VERSION",
    "acall",
    "call",
    "default_codec",
    "fast_config",
    "format_endpoint",
    "get_file",
    "pack_endpoint",
    "put_file",
    "runtime_codec",
    "unpack_endpoint",
]
