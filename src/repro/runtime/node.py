"""A live peer node: one :class:`HybridPeer` behind an asyncio loop.

This is the daemon the ``repro node`` CLI verb runs.  It owns:

* a listening TCP socket (the peer's overlay address packs this
  endpoint, so anything that learns the address can reach the socket);
* a :class:`~repro.runtime.loop_engine.LoopEngine` adapting the
  protocol core's timer calls (HELLO periods, ack/suppress timeouts,
  lookup timers) onto ``loop.call_later``;
* an :class:`~repro.runtime.aio_transport.AioTransport` for outbound
  protocol frames;
* the inbound dispatch loop: protocol frames go straight to
  ``peer.receive``; client verbs (:mod:`repro.runtime.client`) are
  answered with a :class:`ClientReply` on the same connection.

The protocol object itself is the *unmodified* simulator class --
:class:`RuntimePeer` only adds value capture for ``get`` replies.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

import numpy as np

from ..core.config import HybridConfig
from ..core.hybridpeer import HybridPeer
from ..core.lookup import PENDING, SUCCESS, QueryRegistry
from ..obs.bridge import TraceBridge
from ..obs.prom import handle_http_request
from ..obs.registry import MetricsRegistry
from ..overlay.idspace import IdSpace
from ..overlay.messages import DataFound, Message
from ..sim.trace import TraceBus
from .aio_transport import AioTransport, frame_stream
from .client import ClientGet, ClientPut, ClientReply, ClientStatus, runtime_codec
from .codec import WIRE_VERSION, CodecError, format_endpoint, pack_endpoint
from .loop_engine import LoopEngine

__all__ = ["RuntimePeer", "NodeDaemon", "PeerNode"]

# An inbound connection is sniffed by its first 4 bytes: these prefixes
# mean a plain-text HTTP request (scraper hitting /metrics or /healthz);
# anything else is a big-endian frame length.  No protocol frame can
# alias them -- as a length either would exceed MAX_FRAME by ~100x.
_HTTP_PREFIXES = (b"GET ", b"HEAD")

# Bound on the HTTP request head we are willing to buffer.
_MAX_HTTP_HEAD = 8192


class RuntimePeer(HybridPeer):
    """HybridPeer that keeps answer values for the client-facing ``get``.

    The simulator's :class:`QueryRecord` tracks latency and holders but
    not payloads (the paper's metrics don't need them); a live ``get``
    does, so the value riding on :class:`DataFound` is stashed per
    query id before normal processing.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.found_values: Dict[int, Any] = {}

    def on_DataFound(self, msg: DataFound) -> None:
        if msg.query_id in self.pending_lookups:
            self.found_values[msg.query_id] = msg.value
        super().on_DataFound(msg)


class NodeDaemon:
    """Shared asyncio scaffolding for live peers and the bootstrap server.

    Subclasses create their protocol actor in :meth:`_make_actor` (the
    listen endpoint is known by then) and may override
    :meth:`handle_client` for the verbs they answer.
    """

    def __init__(
        self,
        host: str,
        port: int,
        config: HybridConfig,
        seed: int = 0,
        codec_version: int = WIRE_VERSION,
    ) -> None:
        self.host = host
        self.port = port
        self.config = config
        self.seed = seed
        # The version this daemon *encodes* with; it decodes both wire
        # formats regardless, so mixed-version localnets interoperate
        # without in-band negotiation (see runtime/codec.py).
        self.codec = runtime_codec(version=codec_version)
        # Wire format actually observed on inbound connections, keyed
        # by the sender's endpoint -- this is what the status verb
        # reports per connection (the configured constant alone cannot
        # tell a mixed-version localnet apart).
        self._rx_versions: Dict[str, int] = {}
        # Observability: every daemon carries its own registry; the
        # trace bus + bridge replay the protocol core's trace emissions
        # (lookup spans, hop timings, stores) into the same metric
        # names the simulator produces, so a live scrape and a sim run
        # are directly comparable.
        self.registry = MetricsRegistry()
        self.trace = TraceBus()
        self.bridge = TraceBridge(self.trace, self.registry)
        self.engine: Optional[LoopEngine] = None
        self.transport: Optional[AioTransport] = None
        self.actor: Any = None
        self.address = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started_at: Optional[float] = None
        self._server: Optional[asyncio.base_events.Server] = None
        # rx frame counting (per decoded message type), child-cached.
        self._rx_children: Dict[type, Any] = {}
        self._rx_frames_fam = self.registry.counter(
            "repro_frames_total",
            "Protocol messages handled, by direction and message type",
            labelnames=("direction", "type"),
        )
        self._rx_bytes = self.registry.counter(
            "repro_wire_bytes_total",
            "Wire payload bytes moved, by direction",
            labelnames=("direction",),
        ).labels("rx")
        # Inbound connections stay open as long as the remote's pooled
        # transport wants them; tracked so stop() can reap them all.
        self._inbound: Dict[asyncio.Task, asyncio.StreamWriter] = {}

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and bring the protocol actor up."""
        loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._serve_conn, self.host, self.port
        )
        if self.port == 0:  # ephemeral: learn what the kernel picked
            self.port = self._server.sockets[0].getsockname()[1]
        self.address = pack_endpoint(self.host, self.port)
        self._loop = loop
        self._started_at = loop.time()
        self.engine = LoopEngine(loop)
        self.transport = AioTransport(self.codec, loop, registry=self.registry)
        self.actor = self._make_actor()
        self.transport.register(self.actor)
        self._register_gauges()

    def _make_actor(self) -> Any:
        raise NotImplementedError

    def _register_gauges(self) -> None:
        """Function-backed gauges read lazily at scrape time only."""
        self.registry.gauge(
            "repro_uptime_seconds", "Seconds since this daemon started"
        ).set_function(self.uptime)

    def uptime(self) -> float:
        """Seconds since start() bound the listening socket (0 before)."""
        if self._loop is None or self._started_at is None:
            return 0.0
        return self._loop.time() - self._started_at

    async def stop(self) -> None:
        """Tear down: listener, inbound conns, timers, outbound pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.actor is not None:
            self.actor.alive = False
        if self.engine is not None:
            self.engine.close()
        if self.transport is not None:
            await self.transport.aclose()
        inbound = dict(self._inbound)
        self._inbound.clear()
        for task, writer in inbound.items():
            try:
                writer.transport.abort()
            except Exception:
                pass
            task.cancel()
        if inbound:
            await asyncio.gather(*inbound, return_exceptions=True)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    async def _serve_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inbound[task] = writer
        try:
            # Sniff the first 4 bytes: an HTTP verb means a scraper (or
            # a human with curl) is on the line; anything else is the
            # length prefix of a protocol frame.
            try:
                head: Optional[bytes] = await reader.readexactly(4)
            except (asyncio.IncompleteReadError, ConnectionError):
                head = None
            if head is None:
                return
            if head in _HTTP_PREFIXES:
                await self._serve_http(reader, writer, head)
                return
            last_version = -1
            # Buffered frame loop: under a flood burst the remote's
            # write coalescing lands dozens of frames per TCP segment,
            # and frame_stream slices them all out of one read.
            async for payload in frame_stream(reader, initial=head):
                try:
                    msg = self.codec.decode(payload)
                except CodecError:
                    break  # corrupt/foreign stream: drop the connection
                self._count_rx(type(msg), len(payload) + 4)
                version = payload[0]
                if version != last_version:
                    # Once per connection in steady state: remember the
                    # wire format this sender actually speaks, keyed by
                    # its endpoint (client verbs carry no address).
                    last_version = version
                    if msg.sender > 0xFFFF:
                        self._rx_versions[format_endpoint(msg.sender)] = version
                if isinstance(msg, (ClientPut, ClientGet, ClientStatus)):
                    reply = await self.handle_client(msg)
                    writer.write(self.codec.frame(reply))
                    await writer.drain()
                elif self.actor is not None and self.actor.alive:
                    self.actor.receive(msg)
        except CodecError:
            pass  # oversized frame: drop the connection
        except (OSError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._inbound.pop(task, None)
            try:
                # close() is enough here -- awaiting wait_closed() inside
                # a task that stop() may have just cancelled would raise
                # CancelledError out of the finally block.
                writer.close()
            except (OSError, ConnectionError):
                pass

    def _count_rx(self, msg_type: type, nbytes: int) -> None:
        child = self._rx_children.get(msg_type)
        if child is None:
            child = self._rx_frames_fam.labels("rx", msg_type.__name__)
            self._rx_children[msg_type] = child
        child.inc()
        self._rx_bytes.inc(nbytes)

    async def _serve_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter, head: bytes
    ) -> None:
        """Answer one HTTP request (scrape endpoint) and close."""
        data = head
        while b"\r\n\r\n" not in data and len(data) < _MAX_HTTP_HEAD:
            chunk = await reader.read(1024)
            if not chunk:
                break
            data += chunk
        request_line = data.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        response = handle_http_request(
            request_line, self.registry, self.health_snapshot
        )
        writer.write(response)
        await writer.drain()

    def health_snapshot(self) -> Dict[str, Any]:
        """The ``/healthz`` body; subclasses add role-specific liveness."""
        return {
            "ok": True,
            "endpoint": f"{self.host}:{self.port}",
            "uptime_s": round(self.uptime(), 3),
            "codec_version": self.codec.version,
        }

    def codec_snapshot(self) -> Dict[str, Any]:
        """Per-connection codec state for the status verb.

        ``version`` is what this daemon encodes; ``rx_peer_versions``
        is the wire format each peer was *observed* sending (from the
        version byte of decoded frames); ``tx_connections`` is the
        transmit side per destination.  In a mixed-version localnet the
        observed maps are how you see who still speaks v1.
        """
        snapshot: Dict[str, Any] = {
            "version": self.codec.version,
            "accepts": sorted(self.codec.accepted_versions),
            "rx_peer_versions": dict(self._rx_versions),
        }
        if self.transport is not None:
            snapshot["tx_connections"] = self.transport.connection_info()
        return snapshot

    async def handle_client(self, msg: Message) -> ClientReply:
        return ClientReply(ok=False, error=f"unsupported verb {type(msg).__name__}")


class PeerNode(NodeDaemon):
    """Daemon hosting one :class:`RuntimePeer`.

    ``config.server_address`` must be the packed endpoint of a running
    bootstrap daemon (:class:`~repro.runtime.bootstrap.BootstrapNode`).
    """

    def __init__(
        self,
        host: str,
        port: int,
        config: HybridConfig,
        seed: int = 0,
        capacity: float = 1.0,
        interest: Optional[str] = None,
        codec_version: int = WIRE_VERSION,
    ) -> None:
        super().__init__(host, port, config, seed, codec_version=codec_version)
        self.capacity = capacity
        self.interest = interest
        self.queries = QueryRegistry()

    def _make_actor(self) -> RuntimePeer:
        return RuntimePeer(
            address=self.address,
            host=0,
            engine=self.engine,
            transport=self.transport,
            idspace=IdSpace(self.config.id_bits),
            config=self.config,
            rng=np.random.default_rng(self.seed),
            queries=self.queries,
            capacity=self.capacity,
            interest=self.interest,
            trace=self.trace,
        )

    def _register_gauges(self) -> None:
        super()._register_gauges()
        peer = self.peer
        self.registry.gauge(
            "repro_node_joined", "1 once the join handshake completed"
        ).set_function(lambda: 1.0 if peer.joined else 0.0)
        self.registry.gauge(
            "repro_keys_stored", "Data items in this peer's local database"
        ).set_function(lambda: float(len(peer.database)))

    @property
    def peer(self) -> RuntimePeer:
        return self.actor

    # ------------------------------------------------------------------
    async def join(self, timeout: float = 30.0) -> None:
        """Contact the bootstrap server and wait for the join handshake."""
        self.peer.begin_join()
        deadline = asyncio.get_running_loop().time() + timeout
        while not self.peer.joined:
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError(
                    f"{self.host}:{self.port} did not join within {timeout}s"
                )
            await asyncio.sleep(0.02)

    # ------------------------------------------------------------------
    async def handle_client(self, msg: Message) -> ClientReply:
        if isinstance(msg, ClientPut):
            return await self._do_put(msg)
        if isinstance(msg, ClientGet):
            return await self._do_get(msg)
        if isinstance(msg, ClientStatus):
            payload = self.status_snapshot()
            if msg.include_metrics:
                payload["metrics"] = self.registry.snapshot()
            return ClientReply(ok=True, payload=payload)
        return await super().handle_client(msg)

    async def _do_put(self, msg: ClientPut) -> ClientReply:
        if not self.peer.joined:
            return ClientReply(ok=False, error="node has not joined yet")
        d_id = self.peer.store(msg.key, msg.value)
        return ClientReply(ok=True, payload={"key": msg.key, "d_id": d_id})

    async def _do_get(self, msg: ClientGet) -> ClientReply:
        if not self.peer.joined:
            return ClientReply(ok=False, error="node has not joined yet")
        qid = self.peer.lookup(msg.key)
        # The lookup resolves via the peer's own timers/messages; poll
        # the registry until it leaves PENDING (bounded by the protocol's
        # own lookup_timeout plus reflood budget, so no extra deadline).
        while True:
            rec = self.queries.get(qid)
            if rec is None or rec.status != PENDING:
                break
            await asyncio.sleep(0.02)
        if rec is None or rec.status != SUCCESS:
            return ClientReply(ok=False, error=f"lookup failed for {msg.key!r}")
        value = self.peer.found_values.pop(qid, None)
        if value is None:
            # Answered from the local database/cache: no DataFound rode
            # the wire, so read the value directly.
            item = self.peer.database.get(msg.key) or self.peer.cache_lookup(msg.key)
            value = item.value if item is not None else None
        return ClientReply(
            ok=True,
            payload={"key": msg.key, "value": value, "holder": rec.holder},
        )

    # ------------------------------------------------------------------
    def status_snapshot(self) -> Dict[str, Any]:
        p = self.peer
        return {
            "endpoint": f"{self.host}:{self.port}",
            "address": self.address,
            "role": p.role,
            "joined": p.joined,
            "p_id": p.p_id,
            "predecessor": p.predecessor,
            "successor": p.successor,
            "keys_stored": len(p.database),
            "messages_received": p.messages_received,
            "uptime_s": round(self.uptime(), 3),
            "codec_version": self.codec.version,
            "codec": self.codec_snapshot(),
        }

    def health_snapshot(self) -> Dict[str, Any]:
        health = super().health_snapshot()
        health["role"] = self.peer.role
        health["joined"] = self.peer.joined
        return health
