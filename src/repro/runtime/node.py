"""A live peer node: one :class:`HybridPeer` behind an asyncio loop.

This is the daemon the ``repro node`` CLI verb runs.  It owns:

* a listening TCP socket (the peer's overlay address packs this
  endpoint, so anything that learns the address can reach the socket);
* a :class:`~repro.runtime.loop_engine.LoopEngine` adapting the
  protocol core's timer calls (HELLO periods, ack/suppress timeouts,
  lookup timers) onto ``loop.call_later``;
* an :class:`~repro.runtime.aio_transport.AioTransport` for outbound
  protocol frames;
* the inbound dispatch loop: protocol frames go straight to
  ``peer.receive``; client verbs (:mod:`repro.runtime.client`) are
  answered with a :class:`ClientReply` on the same connection -- each
  request in its own task, replies written **as they resolve** (not in
  arrival order), correlated by the request id the client stamped.

The protocol object itself is the *unmodified* simulator class --
:class:`RuntimePeer` only adds value capture for ``get`` replies and
completion hooks (join / lookup) so client waiters resolve on the event
that completes them instead of polling.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Set

import numpy as np

from ..core.config import HybridConfig
from ..core.hybridpeer import HybridPeer
from ..core.lookup import PENDING, SUCCESS, QueryRegistry
from ..obs.bridge import TraceBridge
from ..obs.prom import handle_http_request
from ..obs.registry import DEFAULT_CLIENT_LATENCY_MS_BUCKETS, MetricsRegistry
from ..overlay.idspace import IdSpace
from ..overlay.messages import DataFound, Message
from ..sim.trace import TraceBus
from ..swarm import manifest as swarm_manifest
from .aio_transport import AioTransport, frame_stream
from .client import (
    CLIENT_REQUEST_TYPES,
    ClientGet,
    ClientGetFile,
    ClientGetPiece,
    ClientPieceReply,
    ClientPut,
    ClientPutFile,
    ClientPutPiece,
    ClientReply,
    ClientStatus,
    runtime_codec,
)
from .codec import WIRE_VERSION, CodecError, format_endpoint, pack_endpoint
from .loop_engine import LoopEngine

__all__ = ["RuntimePeer", "NodeDaemon", "PeerNode"]

# An inbound connection is sniffed by its first 4 bytes: these prefixes
# mean a plain-text HTTP request (scraper hitting /metrics or /healthz);
# anything else is a big-endian frame length.  No protocol frame can
# alias them -- as a length either would exceed MAX_FRAME by ~100x.
_HTTP_PREFIXES = (b"GET ", b"HEAD")

# Bound on the HTTP request head we are willing to buffer.
_MAX_HTTP_HEAD = 8192

# Sentinel distinguishing "no DataFound value captured for this query"
# from a legitimately stored None value.
_NO_VALUE = object()


def _query_id_block(address: int) -> int:
    """Start of this node's disjoint query-id block.

    Flood dedup keys on ``(query_id, attempt)`` with no origin field,
    so live nodes must never reuse each other's query ids (the
    simulator's shared registry makes them globally unique for free).
    Each node claims a 2^32-id block whose index is a 30-bit mix of its
    packed endpoint, keeping every id inside the codec's signed 64-bit
    int while making cross-node collisions require a 30-bit hash
    collision instead of being guaranteed.
    """
    h = (address * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    h ^= h >> 32
    return (h & 0x3FFFFFFF) << 32


class RuntimePeer(HybridPeer):
    """HybridPeer that keeps answer values for the client-facing ``get``.

    The simulator's :class:`QueryRecord` tracks latency and holders but
    not payloads (the paper's metrics don't need them); a live ``get``
    does, so the value riding on :class:`DataFound` is stashed per
    query id before normal processing.

    It also exposes ``join_callbacks``: fired (once each, then cleared)
    the instant the join handshake completes, so the daemon's
    :meth:`PeerNode.join` resolves on the completing message instead of
    polling ``joined`` on a timer.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.found_values: Dict[int, Any] = {}
        self.join_callbacks: List[Callable[[], None]] = []

    def on_DataFound(self, msg: DataFound) -> None:
        if msg.query_id in self.pending_lookups:
            self.found_values[msg.query_id] = msg.value
        super().on_DataFound(msg)

    def _complete_join(self) -> None:
        super()._complete_join()
        callbacks, self.join_callbacks = self.join_callbacks, []
        for callback in callbacks:
            callback()


class NodeDaemon:
    """Shared asyncio scaffolding for live peers and the bootstrap server.

    Subclasses create their protocol actor in :meth:`_make_actor` (the
    listen endpoint is known by then) and may override
    :meth:`handle_client` for the verbs they answer.
    """

    def __init__(
        self,
        host: str,
        port: int,
        config: HybridConfig,
        seed: int = 0,
        codec_version: int = WIRE_VERSION,
    ) -> None:
        self.host = host
        self.port = port
        self.config = config
        self.seed = seed
        # The version this daemon *encodes* with; it decodes both wire
        # formats regardless, so mixed-version localnets interoperate
        # without in-band negotiation (see runtime/codec.py).
        self.codec = runtime_codec(version=codec_version)
        # Wire format actually observed on inbound connections, keyed
        # by the sender's endpoint -- this is what the status verb
        # reports per connection (the configured constant alone cannot
        # tell a mixed-version localnet apart).
        self._rx_versions: Dict[str, int] = {}
        # Observability: every daemon carries its own registry; the
        # trace bus + bridge replay the protocol core's trace emissions
        # (lookup spans, hop timings, stores) into the same metric
        # names the simulator produces, so a live scrape and a sim run
        # are directly comparable.
        self.registry = MetricsRegistry()
        self.trace = TraceBus()
        self.bridge = TraceBridge(self.trace, self.registry)
        self.engine: Optional[LoopEngine] = None
        self.transport: Optional[AioTransport] = None
        self.actor: Any = None
        self.address = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started_at: Optional[float] = None
        self._server: Optional[asyncio.base_events.Server] = None
        # rx frame counting (per decoded message type), child-cached.
        self._rx_children: Dict[type, Any] = {}
        self._rx_frames_fam = self.registry.counter(
            "repro_frames_total",
            "Protocol messages handled, by direction and message type",
            labelnames=("direction", "type"),
        )
        self._rx_bytes = self.registry.counter(
            "repro_wire_bytes_total",
            "Wire payload bytes moved, by direction",
            labelnames=("direction",),
        ).labels("rx")
        # Inbound connections stay open as long as the remote's pooled
        # transport wants them; tracked so stop() can reap them all.
        self._inbound: Dict[asyncio.Task, asyncio.StreamWriter] = {}
        # Client ops currently being resolved (each is its own task, so
        # one slow lookup never blocks the other requests pipelined on
        # the same connection).  The set mirrors the per-connection
        # tracking so stop() can reap stragglers.
        self._client_inflight = 0
        self._client_tasks: Set[asyncio.Task] = set()
        self._client_latency_fam = self.registry.histogram(
            "repro_client_op_latency_ms",
            "Client verb service time (request decoded -> reply written)",
            buckets=DEFAULT_CLIENT_LATENCY_MS_BUCKETS,
            labelnames=("verb",),
        )
        self._client_latency_children: Dict[type, Any] = {}
        self.registry.gauge(
            "repro_client_inflight_ops",
            "Client verbs accepted but not yet answered",
        ).set_function(lambda: float(self._client_inflight))

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and bring the protocol actor up."""
        loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._serve_conn, self.host, self.port
        )
        if self.port == 0:  # ephemeral: learn what the kernel picked
            self.port = self._server.sockets[0].getsockname()[1]
        self.address = pack_endpoint(self.host, self.port)
        self._loop = loop
        self._started_at = loop.time()
        self.engine = LoopEngine(loop)
        self.transport = AioTransport(self.codec, loop, registry=self.registry)
        self.actor = self._make_actor()
        self.transport.register(self.actor)
        self._register_gauges()

    def _make_actor(self) -> Any:
        raise NotImplementedError

    def _register_gauges(self) -> None:
        """Function-backed gauges read lazily at scrape time only."""
        self.registry.gauge(
            "repro_uptime_seconds", "Seconds since this daemon started"
        ).set_function(self.uptime)

    def uptime(self) -> float:
        """Seconds since start() bound the listening socket (0 before)."""
        if self._loop is None or self._started_at is None:
            return 0.0
        return self._loop.time() - self._started_at

    async def stop(self) -> None:
        """Tear down: listener, inbound conns, timers, outbound pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.actor is not None:
            self.actor.alive = False
        if self.engine is not None:
            self.engine.close()
        if self.transport is not None:
            await self.transport.aclose()
        inbound = dict(self._inbound)
        self._inbound.clear()
        for task, writer in inbound.items():
            try:
                writer.transport.abort()
            except Exception:
                pass
            task.cancel()
        if inbound:
            await asyncio.gather(*inbound, return_exceptions=True)
        # Client ops still resolving (their connections just died):
        # cancel and await so teardown leaves no dangling tasks.
        client_tasks = list(self._client_tasks)
        self._client_tasks.clear()
        for reply_task in client_tasks:
            reply_task.cancel()
        if client_tasks:
            await asyncio.gather(*client_tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    async def _serve_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inbound[task] = writer
        # Client requests in flight on *this* connection; cancelled when
        # the connection dies so an abandoned get cannot leak its task.
        replies: Set[asyncio.Task] = set()
        try:
            # Sniff the first 4 bytes: an HTTP verb means a scraper (or
            # a human with curl) is on the line; anything else is the
            # length prefix of a protocol frame.
            try:
                head: Optional[bytes] = await reader.readexactly(4)
            except (asyncio.IncompleteReadError, ConnectionError):
                head = None
            if head is None:
                return
            if head in _HTTP_PREFIXES:
                await self._serve_http(reader, writer, head)
                return
            last_version = -1
            # Buffered frame loop: under a flood burst the remote's
            # write coalescing lands dozens of frames per TCP segment,
            # and frame_stream slices them all out of one read.
            async for payload in frame_stream(reader, initial=head):
                try:
                    msg = self.codec.decode(payload)
                except CodecError:
                    break  # corrupt/foreign stream: drop the connection
                self._count_rx(type(msg), len(payload) + 4)
                version = payload[0]
                if version != last_version:
                    # Once per connection in steady state: remember the
                    # wire format this sender actually speaks, keyed by
                    # its endpoint (client verbs carry no address).
                    last_version = version
                    if msg.sender > 0xFFFF:
                        self._rx_versions[format_endpoint(msg.sender)] = version
                if isinstance(msg, CLIENT_REQUEST_TYPES):
                    # Pipelining: each request resolves in its own task
                    # and writes its reply when done -- a slow get never
                    # holds up the ops queued behind it, and replies may
                    # legitimately leave out of order (the request id
                    # correlates them client-side).
                    reply_task = asyncio.ensure_future(
                        self._answer_client(msg, writer)
                    )
                    replies.add(reply_task)
                    self._client_tasks.add(reply_task)
                    reply_task.add_done_callback(replies.discard)
                    reply_task.add_done_callback(self._client_tasks.discard)
                elif self.actor is not None and self.actor.alive:
                    self.actor.receive(msg)
        except CodecError:
            pass  # oversized frame: drop the connection
        except (OSError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._inbound.pop(task, None)
            for reply_task in list(replies):
                reply_task.cancel()
            try:
                # close() is enough here -- awaiting wait_closed() inside
                # a task that stop() may have just cancelled would raise
                # CancelledError out of the finally block.
                writer.close()
            except (OSError, ConnectionError):
                pass

    async def _answer_client(
        self, msg: Message, writer: asyncio.StreamWriter
    ) -> None:
        """Resolve one client verb and write its correlated reply."""
        loop = self._loop if self._loop is not None else asyncio.get_running_loop()
        t0 = loop.time()
        self._client_inflight += 1
        try:
            try:
                reply = await self.handle_client(msg)
            except asyncio.CancelledError:
                raise  # connection died while we were resolving
            except Exception as exc:  # a handler bug answers, not kills
                reply = ClientReply(ok=False, error=f"internal error: {exc!r}")
            reply.request_id = msg.request_id
            self._observe_client_latency(type(msg), (loop.time() - t0) * 1e3)
            try:
                writer.write(self.codec.frame(reply))
                await writer.drain()
            except (OSError, ConnectionError):
                pass  # client went away; nothing to answer
        finally:
            self._client_inflight -= 1

    def _observe_client_latency(self, verb_type: type, ms: float) -> None:
        child = self._client_latency_children.get(verb_type)
        if child is None:
            verb = verb_type.__name__.removeprefix("Client").lower()
            child = self._client_latency_fam.labels(verb)
            self._client_latency_children[verb_type] = child
        child.observe(ms)

    def _count_rx(self, msg_type: type, nbytes: int) -> None:
        child = self._rx_children.get(msg_type)
        if child is None:
            child = self._rx_frames_fam.labels("rx", msg_type.__name__)
            self._rx_children[msg_type] = child
        child.inc()
        self._rx_bytes.inc(nbytes)

    async def _serve_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter, head: bytes
    ) -> None:
        """Answer one HTTP request (scrape endpoint) and close."""
        data = head
        while b"\r\n\r\n" not in data and len(data) < _MAX_HTTP_HEAD:
            chunk = await reader.read(1024)
            if not chunk:
                break
            data += chunk
        request_line = data.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        response = handle_http_request(
            request_line, self.registry, self.health_snapshot
        )
        writer.write(response)
        await writer.drain()

    def health_snapshot(self) -> Dict[str, Any]:
        """The ``/healthz`` body; subclasses add role-specific liveness."""
        return {
            "ok": True,
            "endpoint": f"{self.host}:{self.port}",
            "uptime_s": round(self.uptime(), 3),
            "codec_version": self.codec.version,
        }

    def codec_snapshot(self) -> Dict[str, Any]:
        """Per-connection codec state for the status verb.

        ``version`` is what this daemon encodes; ``rx_peer_versions``
        is the wire format each peer was *observed* sending (from the
        version byte of decoded frames); ``tx_connections`` is the
        transmit side per destination.  In a mixed-version localnet the
        observed maps are how you see who still speaks v1.
        """
        snapshot: Dict[str, Any] = {
            "version": self.codec.version,
            "accepts": sorted(self.codec.accepted_versions),
            "rx_peer_versions": dict(self._rx_versions),
        }
        if self.transport is not None:
            snapshot["tx_connections"] = self.transport.connection_info()
        return snapshot

    async def handle_client(self, msg: Message) -> ClientReply:
        return ClientReply(ok=False, error=f"unsupported verb {type(msg).__name__}")


class PeerNode(NodeDaemon):
    """Daemon hosting one :class:`RuntimePeer`.

    ``config.server_address`` must be the packed endpoint of a running
    bootstrap daemon (:class:`~repro.runtime.bootstrap.BootstrapNode`).
    """

    def __init__(
        self,
        host: str,
        port: int,
        config: HybridConfig,
        seed: int = 0,
        capacity: float = 1.0,
        interest: Optional[str] = None,
        codec_version: int = WIRE_VERSION,
    ) -> None:
        super().__init__(host, port, config, seed, codec_version=codec_version)
        self.capacity = capacity
        self.interest = interest
        self.queries = QueryRegistry()
        # put-file staging: content hash -> piece index -> raw bytes,
        # held between ClientPutPiece uploads and the ClientPutFile
        # commit that verifies them.  Bounded: when a new content shows
        # up with the table full, the oldest staging entry is dropped
        # (its uploader will get a "missing pieces" error on commit).
        self._swarm_staging: Dict[str, Dict[int, bytes]] = {}
        self._swarm_staging_max = 16

    def _make_actor(self) -> RuntimePeer:
        # The listen address is final here (ephemeral port resolved by
        # start()), so the registry can claim this node's id block.
        self.queries.rebase(_query_id_block(self.address))
        return RuntimePeer(
            address=self.address,
            host=0,
            engine=self.engine,
            transport=self.transport,
            idspace=IdSpace(self.config.id_bits),
            config=self.config,
            rng=np.random.default_rng(self.seed),
            queries=self.queries,
            capacity=self.capacity,
            interest=self.interest,
            trace=self.trace,
        )

    def _register_gauges(self) -> None:
        super()._register_gauges()
        peer = self.peer
        self.registry.gauge(
            "repro_node_joined", "1 once the join handshake completed"
        ).set_function(lambda: 1.0 if peer.joined else 0.0)
        self.registry.gauge(
            "repro_keys_stored", "Data items in this peer's local database"
        ).set_function(lambda: float(len(peer.database)))
        self.registry.gauge(
            "repro_replica_keys",
            "Replica copies this peer holds for other segments",
        ).set_function(lambda: float(len(peer.replicas)))
        self.registry.gauge(
            "repro_swarm_holders",
            "Distinct holders registered with this peer's swarm tracker",
        ).set_function(lambda: float(peer.swarm_tracker.holder_count()))

    @property
    def peer(self) -> RuntimePeer:
        return self.actor

    # ------------------------------------------------------------------
    async def join(self, timeout: float = 30.0) -> None:
        """Contact the bootstrap server and wait for the join handshake.

        Resolution is event-driven: the peer fires its join callbacks
        the instant the handshake-completing message is processed, so
        this returns microseconds after the protocol finishes instead
        of on the next tick of a polling loop.
        """
        if self.peer.joined:
            return
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self.peer.join_callbacks.append(
            lambda: future.done() or future.set_result(None)
        )
        self.peer.begin_join()
        try:
            await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            raise TimeoutError(
                f"{self.host}:{self.port} did not join within {timeout}s"
            ) from None

    # ------------------------------------------------------------------
    async def handle_client(self, msg: Message) -> ClientReply:
        if isinstance(msg, ClientPut):
            return await self._do_put(msg)
        if isinstance(msg, ClientGet):
            return await self._do_get(msg)
        if isinstance(msg, ClientStatus):
            payload = self.status_snapshot()
            if msg.include_metrics:
                payload["metrics"] = self.registry.snapshot()
            return ClientReply(ok=True, payload=payload)
        if isinstance(msg, ClientPutPiece):
            return self._do_put_piece(msg)
        if isinstance(msg, ClientPutFile):
            return await self._do_put_file(msg)
        if isinstance(msg, ClientGetFile):
            return await self._do_get_file(msg)
        if isinstance(msg, ClientGetPiece):
            return self._do_get_piece(msg)
        return await super().handle_client(msg)

    #: Wait budget for the k == 1 landed ack: the store travels at most
    #: a handful of ring/spread hops, so this bounds loss, not load.
    PUT_LANDED_WAIT_S = 10.0

    async def _do_put(self, msg: ClientPut) -> ClientReply:
        if not self.peer.joined:
            return ClientReply(ok=False, error="node has not joined yet")
        if self.config.replication_factor > 1:
            return await self._do_put_durable(msg)
        # k == 1: ok only after the single copy lands at its holder.
        # Acking on send loses the write if the holder dies with the
        # store in flight, and lets an immediate lookup crowd outrun a
        # large value's transfer (the bench_swarm wait_stored() polling
        # workaround this replaces).  Re-sending after a timeout is
        # idempotent: same d_id, same routing, insert overwrites.
        loop = asyncio.get_running_loop()
        wait_s = self.PUT_LANDED_WAIT_S
        last_error = "store not acknowledged"
        for _attempt in range(2):
            future: asyncio.Future = loop.create_future()

            def _landed(committed: bool, latency_ms: float, fut=future) -> None:
                if not fut.done():
                    fut.set_result((committed, latency_ms))

            wid, d_id = self.peer.store_durable(msg.key, msg.value, _landed)
            try:
                committed, latency_ms = await asyncio.wait_for(future, wait_s)
            except asyncio.TimeoutError:
                self.peer.cancel_write_watch(wid)
                last_error = f"store did not land within {wait_s:.1f}s"
                continue
            if committed:
                return ClientReply(
                    ok=True,
                    payload={
                        "key": msg.key,
                        "d_id": d_id,
                        "latency_ms": round(latency_ms, 3),
                    },
                )
            last_error = "store rejected"  # pragma: no cover - k==1 always lands
        return ClientReply(ok=False, error=f"put {msg.key!r}: {last_error}")

    async def _do_put_durable(self, msg: ClientPut) -> ClientReply:
        """Quorum-acknowledged put (repro.replica).

        ``ok=True`` is returned only after the owning t-peer reports
        ``write_quorum`` copies -- the zero-lost-acknowledged-writes
        contract.  If the owner goes silent (crashed mid-write), one
        daemon-side retry re-routes the write after the wait budget,
        which covers the failover window while a successor assumes the
        segment.
        """
        loop = asyncio.get_running_loop()
        cfg = self.config
        # Owner-side retry budget plus routing/failover slack, in s.
        wait_s = (
            cfg.replica_ack_timeout * (cfg.replica_write_retries + 1)
            + 2.0 * cfg.replica_ack_timeout
        ) / 1000.0
        last_error = "write not acknowledged by quorum"
        for _attempt in range(2):
            future: asyncio.Future = loop.create_future()

            def _verdict(committed: bool, latency_ms: float, fut=future) -> None:
                if not fut.done():
                    fut.set_result((committed, latency_ms))

            wid, d_id = self.peer.store_durable(msg.key, msg.value, _verdict)
            try:
                committed, latency_ms = await asyncio.wait_for(future, wait_s)
            except asyncio.TimeoutError:
                self.peer.cancel_write_watch(wid)
                last_error = f"no quorum verdict within {wait_s:.1f}s"
                continue
            if committed:
                return ClientReply(
                    ok=True,
                    payload={
                        "key": msg.key,
                        "d_id": d_id,
                        "replicated": True,
                        "quorum": cfg.write_quorum,
                        "latency_ms": round(latency_ms, 3),
                    },
                )
            last_error = "quorum not reached"
        return ClientReply(ok=False, error=f"put {msg.key!r}: {last_error}")

    async def _do_get(self, msg: ClientGet) -> ClientReply:
        if not self.peer.joined:
            return ClientReply(ok=False, error="node has not joined yet")
        qid = self.peer.lookup(msg.key)
        # Event-driven completion: succeed()/fail() fires the watcher
        # inside the message/timer handler that resolved the lookup, so
        # the waiting future completes on the same loop iteration --
        # no polling, no added latency.  The protocol's own
        # lookup_timeout (plus reflood budget) bounds the wait.
        rec = self.queries.get(qid)
        try:
            if rec is not None and rec.status == PENDING:
                future: asyncio.Future = asyncio.get_running_loop().create_future()
                self.queries.watch(
                    qid, lambda r: future.done() or future.set_result(r)
                )
                try:
                    rec = await future
                except asyncio.CancelledError:
                    self.queries.unwatch(qid)
                    raise
            if rec is None or rec.status != SUCCESS:
                return ClientReply(
                    ok=False, error=f"lookup failed for {msg.key!r}"
                )
            value = self.peer.found_values.pop(qid, _NO_VALUE)
            if value is _NO_VALUE:
                # No DataFound rode the wire for this query: either the
                # lookup was answered from this node's own database or
                # cache (read it directly -- a stored None is still a
                # found value), or the protocol located a holder whose
                # value never arrived.  The two used to collapse into
                # ``value: None``; keep them distinct.
                item = (
                    self.peer.database.get(msg.key)
                    or self.peer.cache_lookup(msg.key)
                )
                if item is None and self.config.replication_factor > 1:
                    # Failover window: we own the key but the repair
                    # pull hasn't promoted our replica copy yet.
                    item = self.peer.replicas.get(msg.key)
                if item is None:
                    return ClientReply(
                        ok=False,
                        error=(
                            f"holder {rec.holder} resolved for {msg.key!r} "
                            "but no value arrived (value missing)"
                        ),
                    )
                value = item.value
            return ClientReply(
                ok=True,
                payload={"key": msg.key, "value": value, "holder": rec.holder},
            )
        finally:
            self.peer.found_values.pop(qid, None)

    # ------------------------------------------------------------------
    # Bulk transfer (repro.swarm)
    # ------------------------------------------------------------------
    def _swarm_gate(self) -> Optional[ClientReply]:
        if not self.config.swarm_enabled:
            return ClientReply(
                ok=False,
                error="swarm mode is disabled (start the node with "
                "--set swarm_enabled=true)",
            )
        if not self.peer.joined:
            return ClientReply(ok=False, error="node has not joined yet")
        return None

    def _do_put_piece(self, msg: ClientPutPiece) -> ClientReply:
        refused = self._swarm_gate()
        if refused is not None:
            return refused
        staged = self._swarm_staging.get(msg.content)
        if staged is None:
            while len(self._swarm_staging) >= self._swarm_staging_max:
                self._swarm_staging.pop(next(iter(self._swarm_staging)))
            staged = self._swarm_staging[msg.content] = {}
        staged[msg.index] = msg.data
        return ClientReply(
            ok=True,
            payload={"content": msg.content, "index": msg.index,
                     "staged": len(staged)},
        )

    async def _do_put_file(self, msg: ClientPutFile) -> ClientReply:
        """Commit staged pieces: verify every hash, store, seed, track."""
        refused = self._swarm_gate()
        if refused is not None:
            return refused
        manifest = {
            swarm_manifest.MANIFEST_MARKER: 1,
            "content": msg.content,
            "length": msg.length,
            "piece_size": msg.piece_size,
            "pieces": list(msg.pieces),
        }
        staged = self._swarm_staging.pop(msg.content, {})
        missing = [i for i in range(len(msg.pieces)) if i not in staged]
        if missing:
            return ClientReply(
                ok=False,
                error=f"put-file {msg.key!r}: missing staged pieces {missing[:8]}",
            )
        bad = [
            i for i in range(len(msg.pieces))
            if not swarm_manifest.verify_piece(manifest, i, staged[i])
        ]
        if bad:
            return ClientReply(
                ok=False,
                error=f"put-file {msg.key!r}: piece hash mismatch at {bad[:8]}",
            )
        # The manifest is the stored value: it rides the ordinary put
        # path, so replication/quorum semantics apply to it unchanged.
        reply = await self._do_put(ClientPut(key=msg.key, value=manifest))
        if not reply.ok:
            return reply
        self.peer.swarm_seed(manifest, staged)
        payload = dict(reply.payload or {})
        payload.update(
            {"content": msg.content, "pieces": len(msg.pieces),
             "length": msg.length}
        )
        return ClientReply(ok=True, payload=payload)

    async def _do_get_file(self, msg: ClientGetFile) -> ClientReply:
        """Resolve the manifest, swarm-fetch the pieces, report counters.

        The content itself is not folded into this reply: the client
        pulls the pieces with :class:`ClientGetPiece` (raw-bytes reply
        frames) and verifies them locally -- chunked transfer instead
        of one giant JSON payload.
        """
        refused = self._swarm_gate()
        if refused is not None:
            return refused
        lookup = await self._do_get(ClientGet(key=msg.key))
        if not lookup.ok:
            return lookup
        manifest = lookup.payload.get("value")
        if not swarm_manifest.is_manifest(manifest):
            return ClientReply(
                ok=False,
                error=f"{msg.key!r} is not chunked content (no swarm manifest)",
            )
        content = manifest["content"]
        n_pieces = len(manifest["pieces"])
        local = self.peer.swarm_pieces.get(content, {})
        if len(local) < n_pieces:
            loop = asyncio.get_running_loop()
            future: asyncio.Future = loop.create_future()

            def _done(data: Optional[bytes], info: Dict[str, Any],
                      fut=future) -> None:
                if not fut.done():
                    fut.set_result((data, info))

            self.peer.swarm_fetch(manifest, _done)
            # Budget: enough ticks for several announce/retry rounds.
            wait_s = 10.0 * self.config.swarm_request_timeout / 1000.0 + 5.0
            try:
                data, info = await asyncio.wait_for(future, wait_s)
            except asyncio.TimeoutError:
                return ClientReply(
                    ok=False,
                    error=f"swarm fetch of {msg.key!r} incomplete after "
                    f"{wait_s:.0f}s "
                    f"({len(self.peer.swarm_pieces.get(content, {}))}"
                    f"/{n_pieces} pieces)",
                )
            if data is None:
                return ClientReply(
                    ok=False,
                    error=f"swarm fetch of {msg.key!r} failed integrity "
                    f"verification ({info.get('integrity_failures')} failures)",
                )
            fetch_info = info
        else:
            fetch_info = {"pieces": n_pieces, "duration_ms": 0.0,
                          "integrity_failures": 0}
        return ClientReply(
            ok=True,
            payload={
                "key": msg.key,
                "manifest": manifest,
                "pieces": n_pieces,
                "duration_ms": round(float(fetch_info.get("duration_ms", 0.0)), 3),
                "integrity_failures": int(fetch_info.get("integrity_failures", 0)),
            },
        )

    def _do_get_piece(self, msg: ClientGetPiece) -> ClientReply:
        refused = self._swarm_gate()
        if refused is not None:
            return refused
        data = self.peer.swarm_pieces.get(msg.content, {}).get(msg.index)
        if data is None:
            return ClientReply(
                ok=False,
                error=f"piece {msg.index} of {msg.content[:12]} not held here",
            )
        return ClientPieceReply(
            ok=True,
            payload={"content": msg.content, "index": msg.index},
            data=data,
        )

    # ------------------------------------------------------------------
    def status_snapshot(self) -> Dict[str, Any]:
        p = self.peer
        return {
            "endpoint": f"{self.host}:{self.port}",
            "address": self.address,
            "role": p.role,
            "joined": p.joined,
            "p_id": p.p_id,
            "predecessor": p.predecessor,
            "successor": p.successor,
            "keys_stored": len(p.database),
            "replica_keys": len(p.replicas),
            "swarm": {
                "enabled": self.config.swarm_enabled,
                "contents_held": len(p.swarm_pieces),
                "contents_tracked": len(p.swarm_tracker),
                "tracker_holders": p.swarm_tracker.holder_count(),
                "integrity_failures": p.swarm_integrity_failures,
            },
            "messages_received": p.messages_received,
            "uptime_s": round(self.uptime(), 3),
            "codec_version": self.codec.version,
            "codec": self.codec_snapshot(),
        }

    def health_snapshot(self) -> Dict[str, Any]:
        health = super().health_snapshot()
        health["role"] = self.peer.role
        health["joined"] = self.peer.joined
        return health
