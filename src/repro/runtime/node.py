"""A live peer node: one :class:`HybridPeer` behind an asyncio loop.

This is the daemon the ``repro node`` CLI verb runs.  It owns:

* a listening TCP socket (the peer's overlay address packs this
  endpoint, so anything that learns the address can reach the socket);
* a :class:`~repro.runtime.loop_engine.LoopEngine` adapting the
  protocol core's timer calls (HELLO periods, ack/suppress timeouts,
  lookup timers) onto ``loop.call_later``;
* an :class:`~repro.runtime.aio_transport.AioTransport` for outbound
  protocol frames;
* the inbound dispatch loop: protocol frames go straight to
  ``peer.receive``; client verbs (:mod:`repro.runtime.client`) are
  answered with a :class:`ClientReply` on the same connection.

The protocol object itself is the *unmodified* simulator class --
:class:`RuntimePeer` only adds value capture for ``get`` replies.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

import numpy as np

from ..core.config import HybridConfig
from ..core.hybridpeer import HybridPeer
from ..core.lookup import PENDING, SUCCESS, QueryRegistry
from ..overlay.idspace import IdSpace
from ..overlay.messages import DataFound, Message
from .aio_transport import AioTransport, read_frame
from .client import ClientGet, ClientPut, ClientReply, ClientStatus, runtime_codec
from .codec import CodecError, pack_endpoint
from .loop_engine import LoopEngine

__all__ = ["RuntimePeer", "NodeDaemon", "PeerNode"]


class RuntimePeer(HybridPeer):
    """HybridPeer that keeps answer values for the client-facing ``get``.

    The simulator's :class:`QueryRecord` tracks latency and holders but
    not payloads (the paper's metrics don't need them); a live ``get``
    does, so the value riding on :class:`DataFound` is stashed per
    query id before normal processing.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.found_values: Dict[int, Any] = {}

    def on_DataFound(self, msg: DataFound) -> None:
        if msg.query_id in self.pending_lookups:
            self.found_values[msg.query_id] = msg.value
        super().on_DataFound(msg)


class NodeDaemon:
    """Shared asyncio scaffolding for live peers and the bootstrap server.

    Subclasses create their protocol actor in :meth:`_make_actor` (the
    listen endpoint is known by then) and may override
    :meth:`handle_client` for the verbs they answer.
    """

    def __init__(
        self,
        host: str,
        port: int,
        config: HybridConfig,
        seed: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.config = config
        self.seed = seed
        self.codec = runtime_codec()
        self.engine: Optional[LoopEngine] = None
        self.transport: Optional[AioTransport] = None
        self.actor: Any = None
        self.address = 0
        self._server: Optional[asyncio.base_events.Server] = None
        # Inbound connections stay open as long as the remote's pooled
        # transport wants them; tracked so stop() can reap them all.
        self._inbound: Dict[asyncio.Task, asyncio.StreamWriter] = {}

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and bring the protocol actor up."""
        loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._serve_conn, self.host, self.port
        )
        if self.port == 0:  # ephemeral: learn what the kernel picked
            self.port = self._server.sockets[0].getsockname()[1]
        self.address = pack_endpoint(self.host, self.port)
        self.engine = LoopEngine(loop)
        self.transport = AioTransport(self.codec, loop)
        self.actor = self._make_actor()
        self.transport.register(self.actor)

    def _make_actor(self) -> Any:
        raise NotImplementedError

    async def stop(self) -> None:
        """Tear down: listener, inbound conns, timers, outbound pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.actor is not None:
            self.actor.alive = False
        if self.engine is not None:
            self.engine.close()
        if self.transport is not None:
            await self.transport.aclose()
        inbound = dict(self._inbound)
        self._inbound.clear()
        for task, writer in inbound.items():
            try:
                writer.transport.abort()
            except Exception:
                pass
            task.cancel()
        if inbound:
            await asyncio.gather(*inbound, return_exceptions=True)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    async def _serve_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inbound[task] = writer
        try:
            while True:
                payload = await read_frame(reader)
                if payload is None:
                    break
                try:
                    msg = self.codec.decode(payload)
                except CodecError:
                    break  # corrupt/foreign stream: drop the connection
                if isinstance(msg, (ClientPut, ClientGet, ClientStatus)):
                    reply = await self.handle_client(msg)
                    writer.write(self.codec.frame(reply))
                    await writer.drain()
                elif self.actor is not None and self.actor.alive:
                    self.actor.receive(msg)
        except (OSError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._inbound.pop(task, None)
            try:
                # close() is enough here -- awaiting wait_closed() inside
                # a task that stop() may have just cancelled would raise
                # CancelledError out of the finally block.
                writer.close()
            except (OSError, ConnectionError):
                pass

    async def handle_client(self, msg: Message) -> ClientReply:
        return ClientReply(ok=False, error=f"unsupported verb {type(msg).__name__}")


class PeerNode(NodeDaemon):
    """Daemon hosting one :class:`RuntimePeer`.

    ``config.server_address`` must be the packed endpoint of a running
    bootstrap daemon (:class:`~repro.runtime.bootstrap.BootstrapNode`).
    """

    def __init__(
        self,
        host: str,
        port: int,
        config: HybridConfig,
        seed: int = 0,
        capacity: float = 1.0,
        interest: Optional[str] = None,
    ) -> None:
        super().__init__(host, port, config, seed)
        self.capacity = capacity
        self.interest = interest
        self.queries = QueryRegistry()

    def _make_actor(self) -> RuntimePeer:
        return RuntimePeer(
            address=self.address,
            host=0,
            engine=self.engine,
            transport=self.transport,
            idspace=IdSpace(self.config.id_bits),
            config=self.config,
            rng=np.random.default_rng(self.seed),
            queries=self.queries,
            capacity=self.capacity,
            interest=self.interest,
        )

    @property
    def peer(self) -> RuntimePeer:
        return self.actor

    # ------------------------------------------------------------------
    async def join(self, timeout: float = 30.0) -> None:
        """Contact the bootstrap server and wait for the join handshake."""
        self.peer.begin_join()
        deadline = asyncio.get_running_loop().time() + timeout
        while not self.peer.joined:
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError(
                    f"{self.host}:{self.port} did not join within {timeout}s"
                )
            await asyncio.sleep(0.02)

    # ------------------------------------------------------------------
    async def handle_client(self, msg: Message) -> ClientReply:
        if isinstance(msg, ClientPut):
            return await self._do_put(msg)
        if isinstance(msg, ClientGet):
            return await self._do_get(msg)
        if isinstance(msg, ClientStatus):
            return ClientReply(ok=True, payload=self.status_snapshot())
        return await super().handle_client(msg)

    async def _do_put(self, msg: ClientPut) -> ClientReply:
        if not self.peer.joined:
            return ClientReply(ok=False, error="node has not joined yet")
        d_id = self.peer.store(msg.key, msg.value)
        return ClientReply(ok=True, payload={"key": msg.key, "d_id": d_id})

    async def _do_get(self, msg: ClientGet) -> ClientReply:
        if not self.peer.joined:
            return ClientReply(ok=False, error="node has not joined yet")
        qid = self.peer.lookup(msg.key)
        # The lookup resolves via the peer's own timers/messages; poll
        # the registry until it leaves PENDING (bounded by the protocol's
        # own lookup_timeout plus reflood budget, so no extra deadline).
        while True:
            rec = self.queries.get(qid)
            if rec is None or rec.status != PENDING:
                break
            await asyncio.sleep(0.02)
        if rec is None or rec.status != SUCCESS:
            return ClientReply(ok=False, error=f"lookup failed for {msg.key!r}")
        value = self.peer.found_values.pop(qid, None)
        if value is None:
            # Answered from the local database/cache: no DataFound rode
            # the wire, so read the value directly.
            item = self.peer.database.get(msg.key) or self.peer.cache_lookup(msg.key)
            value = item.value if item is not None else None
        return ClientReply(
            ok=True,
            payload={"key": msg.key, "value": value, "holder": rec.holder},
        )

    # ------------------------------------------------------------------
    def status_snapshot(self) -> Dict[str, Any]:
        p = self.peer
        return {
            "endpoint": f"{self.host}:{self.port}",
            "address": self.address,
            "role": p.role,
            "joined": p.joined,
            "p_id": p.p_id,
            "predecessor": p.predecessor,
            "successor": p.successor,
            "keys_stored": len(p.database),
            "messages_received": p.messages_received,
        }
