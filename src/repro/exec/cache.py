"""Content-addressed on-disk cache for sweep cells.

Every experiment cell is a pure, deterministic function of its inputs:
``(HybridConfig, Scale, crash_fraction, settle_after_crash)`` plus the
code that interprets them.  That makes the result memoizable across
*processes and runs*: re-running a sweep whose inputs have not changed
should cost one JSON read per cell, not laptop-minutes of simulation.

The cache key is the SHA-256 of the canonicalized inputs **and** a
fingerprint of the ``repro`` package source, so any code change
invalidates every entry automatically -- there is no way to read a
stale result produced by a different simulator.

Entries live under ``~/.cache/repro-cells/`` (override with the
``REPRO_CELL_CACHE`` environment variable), one JSON file per cell,
fanned out over 256 two-hex-digit subdirectories.  Writes go through a
same-directory temp file + :func:`os.replace`, so concurrent workers --
including separate sweep processes sharing the cache -- can never
observe a torn entry: a reader sees either the old file, the complete
new file, or nothing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from ..experiments.common import CellResult

__all__ = [
    "CACHE_ENV",
    "CellCache",
    "cell_key",
    "code_fingerprint",
    "default_cache_root",
]

CACHE_ENV = "REPRO_CELL_CACHE"

# Computed once per process; hashing the whole package source is a few
# milliseconds and only runs when a cache is actually consulted.
_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (stable per code tree).

    Part of every cache key: editing any module -- not just the
    experiment drivers -- invalidates previously cached cells, because
    a cell's value is a function of the whole simulator.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def default_cache_root() -> Path:
    env = os.environ.get(CACHE_ENV, "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-cells"


def _spec_inputs(spec: "CellSpec") -> Dict[str, Any]:  # noqa: F821
    """The canonical, JSON-able identity of one cell."""
    return {
        "config": dataclasses.asdict(spec.config),
        "scale": dataclasses.asdict(spec.scale),
        "crash_fraction": spec.crash_fraction,
        "settle_after_crash": spec.settle_after_crash,
        "code": code_fingerprint(),
    }


def cell_key(spec: "CellSpec") -> str:  # noqa: F821
    """SHA-256 hex key of one cell (inputs + code fingerprint)."""
    canonical = json.dumps(_spec_inputs(spec), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class CellCache:
    """Directory of memoized :class:`~repro.experiments.common.CellResult`.

    ``get`` treats every failure mode (missing, torn, stale-schema,
    hand-edited) as a miss -- the cell is simply recomputed -- and
    removes entries it could not parse.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()

    def path_for(self, spec: "CellSpec") -> Path:  # noqa: F821
        key = cell_key(spec)
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, spec: "CellSpec") -> Optional[CellResult]:  # noqa: F821
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            return CellResult.from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt or schema-incompatible entry: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, spec: "CellSpec", result: CellResult) -> None:  # noqa: F821
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"inputs": _spec_inputs(spec), "result": result.to_dict()}
        text = json.dumps(payload, sort_keys=True)
        # Same-directory temp file + rename = atomic on POSIX; the pid +
        # object id suffix keeps concurrent writers of the *same* cell
        # from clobbering each other's temp file.
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}.{id(self):x}")
        try:
            tmp.write_text(text)
            os.replace(tmp, path)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
