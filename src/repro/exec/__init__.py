"""repro.exec -- parallel sweep execution + content-addressed memoization.

The experiments layer declares its sweep cells up front; this package
runs them: :class:`CellExecutor` fans independent cells out over a
process pool (``--jobs`` / ``REPRO_JOBS`` / all cores; ``jobs=1`` is a
zero-machinery inline loop) and :class:`CellCache` memoizes
``run_cell`` results on disk keyed by SHA-256 of the canonicalized
inputs plus a fingerprint of the package source, so unchanged cells are
never recomputed -- across runs, processes, and even across experiments
that happen to share cells.

See EXPERIMENTS.md ("Running paper scale fast") for the user-facing
knobs and scripts/bench_sweep.py for the recorded speedups.
"""

from .cache import CACHE_ENV, CellCache, cell_key, code_fingerprint, default_cache_root
from .pool import (
    CELL_SECONDS_BUCKETS,
    CellExecutionError,
    CellExecutor,
    CellSpec,
    ExecStats,
    resolve_jobs,
)

__all__ = [
    "CACHE_ENV",
    "CellCache",
    "cell_key",
    "code_fingerprint",
    "default_cache_root",
    "CELL_SECONDS_BUCKETS",
    "CellExecutionError",
    "CellExecutor",
    "CellSpec",
    "ExecStats",
    "resolve_jobs",
]
