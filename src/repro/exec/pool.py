"""Parallel sweep execution over a process pool.

Every reproduction experiment is a grid of fully independent,
deterministic cells.  :class:`CellExecutor` is the single place that
turns such a grid into results:

* ``map(specs)`` runs :func:`~repro.experiments.common.run_cell` cells,
  consulting an optional content-addressed :class:`~repro.exec.cache.
  CellCache` first and fanning the misses out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`;
* ``map_fn(fn, items)`` fans out arbitrary pure, picklable work units
  (the experiments whose cells are not plain ``run_cell`` calls --
  Fig. 4 placement panels, the ``ext_*`` studies -- go through this).

Submission order is always preserved in the returned list, so a sweep
produces the same result *sequence* -- and therefore byte-identical
rendered tables -- at any ``jobs`` value and from a warm cache.

``jobs=1`` (the default for bare ``CellExecutor.serial()``) runs
inline with zero subprocess machinery: tests, debuggers and profilers
see plain function calls.  ``jobs`` resolves from the ``--jobs`` flag,
the ``REPRO_JOBS`` environment variable, or ``os.cpu_count()``.

A worker failure is re-raised in the parent as
:class:`CellExecutionError` carrying the owning cell's label and the
worker's full traceback text.

Progress is observable two ways: the executor's
:class:`~repro.obs.registry.MetricsRegistry` (``repro_sweep_cells_total``
by status, ``repro_sweep_cell_seconds`` histogram) and, when
``progress=True``, a stderr line per completed cell (rewritten in
place on a TTY).
"""

from __future__ import annotations

import dataclasses
import os
import sys
import time
import traceback

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, TextIO, Tuple

from ..experiments.common import CellResult, Scale, run_cell
from ..core.config import HybridConfig
from ..obs.registry import MetricsRegistry
from .cache import CellCache

__all__ = [
    "CellSpec",
    "CellExecutor",
    "CellExecutionError",
    "ExecStats",
    "resolve_jobs",
    "CELL_SECONDS_BUCKETS",
]

JOBS_ENV = "REPRO_JOBS"

# Cells range from ~0.1 s (quick scale) to minutes (paper scale).
CELL_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1, 2, 5, 10, 30, 60, 120, 300, 600
)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-count precedence: explicit > ``REPRO_JOBS`` > cpu count."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"{JOBS_ENV} must be an integer, got {env!r}")
        else:
            jobs = os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class CellSpec:
    """One ``run_cell`` invocation, declared up front.

    ``tag`` labels progress lines and error messages only -- it is *not*
    part of the cache identity, so identical cells declared by different
    experiments (Fig. 5a and Table 2 share 18) deduplicate.
    ``system_out`` mirrors ``run_cell``'s escape hatch; a built
    :class:`~repro.core.hybrid.HybridSystem` cannot cross a process
    boundary, so it forces ``jobs=1`` and bypasses the cache.
    """

    config: HybridConfig
    scale: Scale
    crash_fraction: float = 0.0
    settle_after_crash: float = 30_000.0
    tag: str = ""
    system_out: Optional[Dict[str, Any]] = field(default=None, compare=False)
    # Sharded execution (repro.shard).  Deliberately NOT part of the
    # cache identity (_spec_inputs): the sharded run is bit-identical
    # to the single-process run, so a cached cell is valid at any
    # shard count -- and on either cross-shard transport (pipe/shm).
    shards: int = 1
    shard_backend: Optional[str] = None

    @property
    def label(self) -> str:
        bits = [self.tag] if self.tag else []
        bits.append(f"p_s={self.config.p_s:g}")
        bits.append(f"ttl={self.config.ttl}")
        bits.append(f"N={self.scale.n_peers}")
        if self.crash_fraction:
            bits.append(f"crash={self.crash_fraction:g}")
        return " ".join(bits)


class CellExecutionError(RuntimeError):
    """A cell failed inside a worker process."""

    def __init__(self, label: str, worker_traceback: str) -> None:
        self.label = label
        self.worker_traceback = worker_traceback
        super().__init__(
            f"sweep cell [{label}] failed in worker:\n{worker_traceback}"
        )


@dataclass
class ExecStats:
    """Cumulative counters across every ``map``/``map_fn`` call."""

    cells_total: int = 0
    executed: int = 0
    cache_hits: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    cell_seconds: float = 0.0


# ----------------------------------------------------------------------
# Worker entry points (module-level: picklable by reference).  They
# never raise -- failures travel back as (False, traceback_text) so the
# parent controls presentation and pool teardown.
# ----------------------------------------------------------------------
def _cell_worker(spec: CellSpec) -> Tuple[bool, Any, float]:
    t0 = time.perf_counter()
    try:
        result = run_cell(
            spec.config,
            spec.scale,
            crash_fraction=spec.crash_fraction,
            settle_after_crash=spec.settle_after_crash,
            shards=spec.shards,
            shard_backend=spec.shard_backend,
        )
        return True, result, time.perf_counter() - t0
    except BaseException:
        return False, traceback.format_exc(), time.perf_counter() - t0


def _fn_worker(fn: Callable[[Any], Any], item: Any) -> Tuple[bool, Any, float]:
    t0 = time.perf_counter()
    try:
        return True, fn(item), time.perf_counter() - t0
    except BaseException:
        return False, traceback.format_exc(), time.perf_counter() - t0


class CellExecutor:
    """Fans independent sweep cells out over worker processes.

    One executor is typically shared by every sweep of a CLI command or
    experiment bundle, so its stats (and its cache) span experiments.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[CellCache] = None,
        progress: bool = False,
        registry: Optional[MetricsRegistry] = None,
        stream: Optional[TextIO] = None,
        shards: int = 1,
        shard_backend: Optional[str] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.shards = max(1, int(shards))
        self.shard_backend = shard_backend
        self.cache = cache
        self.progress = progress
        self.stream = stream if stream is not None else sys.stderr
        self.registry = registry if registry is not None else MetricsRegistry()
        self._cells_metric = self.registry.counter(
            "repro_sweep_cells_total",
            "sweep cells finished, by status (run|cache_hit|error)",
            ("status",),
        )
        self._seconds_metric = self.registry.histogram(
            "repro_sweep_cell_seconds",
            "wall-clock seconds of one executed sweep cell",
            CELL_SECONDS_BUCKETS,
        )
        self.stats = ExecStats()
        self._line_open = False  # a \r progress line awaiting its newline

    @classmethod
    def serial(cls) -> "CellExecutor":
        """Inline executor: no workers, no cache, no progress output.

        The default the experiment drivers fall back to when no executor
        is passed -- behaviourally identical to the old serial loops.
        """
        return cls(jobs=1)

    # ------------------------------------------------------------------
    def map(self, specs: Sequence[CellSpec]) -> List[CellResult]:
        """Run every cell; return results in submission order."""
        specs = list(specs)
        if self.shards > 1:
            # Executor-wide default: cells that did not pin their own
            # shard count inherit the executor's (CLI --shards).
            specs = [
                dataclasses.replace(s, shards=self.shards) if s.shards == 1 else s
                for s in specs
            ]
        if self.shard_backend is not None:
            specs = [
                dataclasses.replace(s, shard_backend=self.shard_backend)
                if s.shard_backend is None else s
                for s in specs
            ]
        self.stats.cells_total += len(specs)
        if self.jobs > 1:
            for spec in specs:
                if spec.system_out is not None:
                    raise ValueError(
                        f"cell [{spec.label}] requests system_out, which cannot "
                        f"cross a process boundary; run it with jobs=1"
                    )
        t_start = time.perf_counter()
        results: List[Optional[CellResult]] = [None] * len(specs)
        pending: List[int] = []
        for i, spec in enumerate(specs):
            hit = None
            if self.cache is not None and spec.system_out is None:
                hit = self.cache.get(spec)
            if hit is not None:
                results[i] = hit
                self._tick("cache_hit", 0.0, spec.label)
            else:
                pending.append(i)

        if self.jobs == 1:
            for i in pending:
                spec = specs[i]
                t0 = time.perf_counter()
                result = run_cell(
                    spec.config,
                    spec.scale,
                    crash_fraction=spec.crash_fraction,
                    settle_after_crash=spec.settle_after_crash,
                    system_out=spec.system_out,
                    shards=spec.shards,
                    shard_backend=spec.shard_backend,
                )
                elapsed = time.perf_counter() - t0
                if self.cache is not None and spec.system_out is None:
                    self.cache.put(spec, result)
                results[i] = result
                self._tick("run", elapsed, spec.label)
        elif pending:
            def store(i: int, result: CellResult) -> None:
                if self.cache is not None:
                    self.cache.put(specs[i], result)
                results[i] = result

            self._pooled(
                [(i, _cell_worker, (specs[i],), specs[i].label) for i in pending],
                store,
            )
        self.stats.wall_seconds += time.perf_counter() - t_start
        self._finish_line()
        return results  # type: ignore[return-value]

    def map_fn(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        tag: str = "",
    ) -> List[Any]:
        """Fan out ``fn(item)`` for each item, preserving order.

        ``fn`` must be a module-level (picklable) pure function.  No
        caching: these cells' results are experiment-specific objects
        with no canonical serialized form.
        """
        items = list(items)
        self.stats.cells_total += len(items)
        t_start = time.perf_counter()
        results: List[Any] = [None] * len(items)
        labels = [f"{tag}[{i}]" if tag else f"cell[{i}]" for i in range(len(items))]
        if self.jobs == 1:
            for i, item in enumerate(items):
                t0 = time.perf_counter()
                results[i] = fn(item)
                self._tick("run", time.perf_counter() - t0, labels[i])
        elif items:
            def store(i: int, result: Any) -> None:
                results[i] = result

            self._pooled(
                [(i, _fn_worker, (fn, items[i]), labels[i]) for i in range(len(items))],
                store,
            )
        self.stats.wall_seconds += time.perf_counter() - t_start
        self._finish_line()
        return results

    # ------------------------------------------------------------------
    def _pooled(
        self,
        tasks: Sequence[Tuple[int, Callable, tuple, str]],
        store: Callable[[int, Any], None],
    ) -> None:
        """Submit tasks to the pool, collect in completion order."""
        workers = min(self.jobs, len(tasks))
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = {
                pool.submit(worker, *args): (i, label)
                for i, worker, args, label in tasks
            }
            for future in as_completed(futures):
                i, label = futures[future]
                ok, payload, elapsed = future.result()
                if not ok:
                    self._tick("error", elapsed, label)
                    raise CellExecutionError(label, payload)
                store(i, payload)
                self._tick("run", elapsed, label)
        except BaseException:
            pool.shutdown(wait=True, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)

    def _tick(self, status: str, seconds: float, label: str) -> None:
        self._cells_metric.labels(status).inc()
        if status == "run":
            self.stats.executed += 1
            self.stats.cell_seconds += seconds
            self._seconds_metric.observe(seconds)
        elif status == "cache_hit":
            self.stats.cache_hits += 1
        else:
            self.stats.errors += 1
        if not self.progress:
            return
        done = self.stats.executed + self.stats.cache_hits
        message = (
            f"[sweep] {done}/{self.stats.cells_total} cells, "
            f"{self.stats.cache_hits} cache hits, last {seconds:.2f}s ({label})"
        )
        if getattr(self.stream, "isatty", lambda: False)():
            self.stream.write(f"\r\x1b[2K{message}")
            self._line_open = True
        else:
            self.stream.write(message + "\n")
        self.stream.flush()

    def _finish_line(self) -> None:
        if self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False

    def summary(self) -> str:
        """One-line cumulative report (parsed by scripts/sweep_smoke.py)."""
        s = self.stats
        return (
            f"{s.cells_total} cells: {s.cache_hits} cache hits, "
            f"{s.executed} executed, {s.wall_seconds:.1f}s wall (jobs={self.jobs})"
        )
