"""Data-distribution statistics (the Fig. 4 quantities).

Fig. 4 plots the probability density function of the number of data
items per peer under the two placement schemes.  This module turns a
vector of per-peer item counts into that PDF plus the summary numbers
the paper quotes (fraction of peers with no data, fraction below a
count, the maximum), and provides an imbalance measure (Gini) for the
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["DistributionSummary", "items_pdf", "summarize_distribution", "gini"]


@dataclass(frozen=True)
class DistributionSummary:
    """Summary of an items-per-peer distribution."""

    n_peers: int
    total_items: int
    mean: float
    median: float
    max: int
    fraction_zero: float
    fraction_below_10: float
    fraction_below_20: float
    gini: float

    def __str__(self) -> str:
        return (
            f"peers={self.n_peers} items={self.total_items} "
            f"zero={self.fraction_zero:.0%} max={self.max} gini={self.gini:.3f}"
        )


def items_pdf(counts: np.ndarray, n_bins: int = 40) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical PDF of items-per-peer (Fig. 4's curves).

    Returns (bin_centers, density); density integrates to 1 over the
    binned range.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.size == 0:
        raise ValueError("empty counts")
    hi = max(1.0, counts.max())
    hist, edges = np.histogram(counts, bins=n_bins, range=(0.0, hi), density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, hist


def gini(counts: np.ndarray) -> float:
    """Gini coefficient of the per-peer load (0 = perfectly even)."""
    x = np.sort(np.asarray(counts, dtype=float))
    if x.size == 0:
        raise ValueError("empty counts")
    total = x.sum()
    if total == 0:
        return 0.0
    n = x.size
    cum = np.cumsum(x)
    # Standard formula: G = (n + 1 - 2 * sum(cum) / total) / n
    return float((n + 1 - 2 * (cum / total).sum()) / n)


def summarize_distribution(counts: np.ndarray) -> DistributionSummary:
    """All the numbers the paper reads off Fig. 4."""
    counts = np.asarray(counts, dtype=int)
    if counts.size == 0:
        raise ValueError("empty counts")
    return DistributionSummary(
        n_peers=int(counts.size),
        total_items=int(counts.sum()),
        mean=float(counts.mean()),
        median=float(np.median(counts)),
        max=int(counts.max()),
        fraction_zero=float((counts == 0).mean()),
        fraction_below_10=float((counts < 10).mean()),
        fraction_below_20=float((counts < 20).mean()),
        gini=gini(counts),
    )
