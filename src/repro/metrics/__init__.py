"""Measurement helpers.

Items-per-peer distributions (:mod:`~repro.metrics.distributions`),
trace-bus collectors (:mod:`~repro.metrics.collectors`), and plain-text
table rendering for the experiment harness
(:mod:`~repro.metrics.report`).
"""

from .collectors import EventCounter, JoinLatencyCollector, MembershipLog
from .distributions import (
    DistributionSummary,
    gini,
    items_pdf,
    summarize_distribution,
)
from .report import format_grid, format_series, format_table

__all__ = [
    "EventCounter",
    "JoinLatencyCollector",
    "MembershipLog",
    "DistributionSummary",
    "gini",
    "items_pdf",
    "summarize_distribution",
    "format_grid",
    "format_series",
    "format_table",
]
