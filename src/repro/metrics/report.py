"""Plain-text table/series rendering for the experiment harness.

The benchmarks regenerate the paper's tables and figure series as text;
these helpers keep the formatting in one place so every experiment
prints comparable rows.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_series", "format_grid"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table with a header rule."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[object]],
    title: str = "",
) -> str:
    """A figure rendered as a table: one x column, one column per curve."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def format_grid(
    row_label: str,
    row_values: Sequence[object],
    col_label: str,
    col_values: Sequence[object],
    cells: Dict[object, Dict[object, object]],
    title: str = "",
) -> str:
    """A 2-D table like the paper's Table 2 (p_s rows x TTL columns)."""
    headers = [f"{row_label}\\{col_label}"] + [str(c) for c in col_values]
    rows = []
    for r in row_values:
        rows.append([r] + [cells.get(r, {}).get(c, "-") for c in col_values])
    return format_table(headers, rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or value == int(value):
            return f"{value:.0f}"
        return f"{value:.3f}"
    return str(value)
