"""Trace-bus metric collectors.

Subscribe these to a system's :class:`~repro.sim.trace.TraceBus` to
count protocol events without touching protocol code: membership events
(joins, departures, promotions, handoffs), crash detections, lookup
failures, bypass-link additions.  Tests also use them to assert on
protocol behaviour from the outside.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from ..sim.trace import TraceBus, TraceRecord

__all__ = ["EventCounter", "JoinLatencyCollector", "MembershipLog"]


class EventCounter:
    """Counts trace records per category."""

    def __init__(self, bus: TraceBus, categories: List[str] | None = None) -> None:
        self.counts: Counter = Counter()
        self._bus = bus
        self._categories = categories
        if categories is None:
            bus.subscribe("*", self._on_record)
        else:
            for cat in categories:
                bus.subscribe(cat, self._on_record)

    def _on_record(self, record: TraceRecord) -> None:
        self.counts[record.category] += 1

    def __getitem__(self, category: str) -> int:
        return self.counts[category]

    def detach(self) -> None:
        if self._categories is None:
            self._bus.unsubscribe("*", self._on_record)
        else:
            for cat in self._categories:
                self._bus.unsubscribe(cat, self._on_record)


class JoinLatencyCollector:
    """Gathers join latencies as they complete, split by role."""

    def __init__(self, bus: TraceBus) -> None:
        self.by_role: Dict[str, List[float]] = {"t": [], "s": []}
        bus.subscribe("join.complete", self._on_join)

    def _on_join(self, record: TraceRecord) -> None:
        role = record.payload.get("role", "?")
        self.by_role.setdefault(role, []).append(record.payload["latency"])

    def mean(self, role: str) -> float:
        values = self.by_role.get(role, [])
        return sum(values) / len(values) if values else float("nan")

    def overall_mean(self) -> float:
        values = [v for vs in self.by_role.values() for v in vs]
        return sum(values) / len(values) if values else float("nan")


class MembershipLog:
    """Ordered log of membership-affecting events (for churn tests)."""

    CATEGORIES = (
        "join.complete",
        "peer.departed",
        "peer.crashed",
        "crash.detected",
        "t.promotion",
        "t.handoff",
        "s.rejoined",
        "s.rejoin.retry",
        "server.election",
        "server.excise",
    )

    def __init__(self, bus: TraceBus) -> None:
        self.records: List[TraceRecord] = []
        for cat in self.CATEGORIES:
            bus.subscribe(cat, self.records.append)

    def of(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def count(self, category: str) -> int:
        return sum(1 for r in self.records if r.category == category)
