"""TraceBus -> MetricsRegistry adapter.

The simulator announces protocol events on a
:class:`~repro.sim.trace.TraceBus`; the live runtime updates a
:class:`~repro.obs.registry.MetricsRegistry` directly.  This bridge
closes the gap in the sim direction: attach one to an experiment's bus
and the run produces the *same metric names* a live node exposes on
``/metrics`` -- which is what makes live-vs-sim validation of the
reproduction a diff of two scrapes instead of two bespoke reports.

Attaching a bridge subscribes real callbacks, so ``TraceBus.wants()``
starts returning True for the bridged categories and the protocol code
begins building payloads for them.  That cost is opt-in by
construction: the determinism golden and the perf bench run without a
bridge and stay on the no-subscriber fast path.
"""

from __future__ import annotations

from typing import List, Tuple

from ..metrics.collectors import MembershipLog
from ..sim.trace import TraceBus, TraceRecord
from .registry import (
    DEFAULT_CONTACT_BUCKETS,
    DEFAULT_FANOUT_BUCKETS,
    DEFAULT_HOP_BUCKETS,
    DEFAULT_LATENCY_MS_BUCKETS,
    MetricsRegistry,
)

__all__ = ["TraceBridge", "declare_protocol_metrics", "MEMBERSHIP_CATEGORIES"]

# Membership/churn events folded into one labelled counter.  The
# collector that logs these for the churn tests owns the list; reusing
# it keeps the counter and the log covering the same protocol events.
MEMBERSHIP_CATEGORIES: Tuple[str, ...] = MembershipLog.CATEGORIES


def declare_protocol_metrics(registry: MetricsRegistry) -> dict:
    """Declare the shared protocol metric catalogue on ``registry``.

    Called by both the bridge (sim) and the node daemons (live) so the
    two modes agree on names, labels and bucket ladders.  Returns the
    families keyed by short name for callers that bind children.
    """
    return {
        "frames": registry.counter(
            "repro_frames_total",
            "Protocol messages handled, by direction and message type",
            labelnames=("direction", "type"),
        ),
        "lookups": registry.counter(
            "repro_lookups_total",
            "Completed lookups by terminal status",
            labelnames=("status",),
        ),
        "hops": registry.histogram(
            "repro_lookup_hops",
            "Overlay hops travelled by the winning answer of a lookup",
            buckets=DEFAULT_HOP_BUCKETS,
        ),
        "contacts": registry.histogram(
            "repro_lookup_contacts",
            "Distinct overlay contacts consumed by a lookup (connum)",
            buckets=DEFAULT_CONTACT_BUCKETS,
        ),
        "latency": registry.histogram(
            "repro_lookup_latency_ms",
            "Lookup completion latency in protocol milliseconds",
            buckets=DEFAULT_LATENCY_MS_BUCKETS,
        ),
        "hop_events": registry.counter(
            "repro_lookup_hop_events_total",
            "Per-hop lookup trace events, by hop kind (ring/flood/walk/bt)",
            labelnames=("kind",),
        ),
        "fanout": registry.histogram(
            "repro_flood_fanout",
            "s-network flood fan-out per forwarding step",
            buckets=DEFAULT_FANOUT_BUCKETS,
        ),
        "stored": registry.counter(
            "repro_items_stored_total",
            "Data items accepted into local stores",
        ),
        "peer_events": registry.counter(
            "repro_peer_events_total",
            "Membership/churn protocol events, by trace category",
            labelnames=("category",),
        ),
        # --- repro.replica (segment replication + failover) -------------
        "failover": registry.counter(
            "repro_failover_total",
            "Segments whose ownership moved after a crash, by kind "
            "(promotion/absorb)",
            labelnames=("kind",),
        ),
        "repair_items": registry.counter(
            "repro_replica_repair_items_total",
            "Items moved by anti-entropy repair (pulled + pushed)",
        ),
        "replica_lag": registry.gauge(
            "repro_replica_lag",
            "Items the most recently probed replica was missing",
        ),
        "write_quorum_latency": registry.histogram(
            "repro_write_quorum_latency_ms",
            "Origin-observed latency of quorum-acknowledged writes",
            buckets=DEFAULT_LATENCY_MS_BUCKETS,
        ),
        # --- repro.swarm (tracker-mode bulk transfer) --------------------
        "swarm_pieces": registry.counter(
            "repro_swarm_pieces_total",
            "Content pieces transferred over the swarm plane, by direction",
            labelnames=("dir",),
        ),
        "swarm_piece_latency": registry.histogram(
            "repro_swarm_piece_latency_ms",
            "Request-to-receipt latency of individual piece downloads",
            buckets=DEFAULT_LATENCY_MS_BUCKETS,
        ),
        # Live daemons back this same family with a set_function reading
        # the tracker directly; the declaration is idempotent either way.
        "swarm_holders": registry.gauge(
            "repro_swarm_holders",
            "Distinct holders registered with this peer's swarm tracker",
        ),
    }


class TraceBridge:
    """Subscribes registry instruments to a TraceBus.

    One bridge per (bus, registry) pair; ``detach()`` removes every
    subscription it installed (restoring the bus's no-listener fast
    path, relied on by perf tests).
    """

    def __init__(self, bus: TraceBus, registry: MetricsRegistry) -> None:
        self.bus = bus
        self.registry = registry
        fams = declare_protocol_metrics(registry)
        self._frames = fams["frames"]
        self._lookups_ok = fams["lookups"].labels("success")
        self._lookups_fail = fams["lookups"].labels("failure")
        self._hops = fams["hops"].labels()
        self._contacts = fams["contacts"].labels()
        self._latency = fams["latency"].labels()
        self._hop_events = fams["hop_events"]
        self._fanout = fams["fanout"].labels()
        self._stored = fams["stored"].labels()
        self._peer_events = fams["peer_events"]
        self._failover = fams["failover"]
        self._repair_items = fams["repair_items"].labels()
        self._replica_lag = fams["replica_lag"].labels()
        self._quorum_latency = fams["write_quorum_latency"].labels()
        self._swarm_pieces = fams["swarm_pieces"]
        self._swarm_piece_latency = fams["swarm_piece_latency"].labels()
        self._swarm_holders = fams["swarm_holders"].labels()
        self._installed: List[Tuple[str, object]] = []
        self._install()

    # ------------------------------------------------------------------
    def _install(self) -> None:
        pairs = [
            ("transport.send", self._on_send),
            ("lookup.hop", self._on_hop),
            ("lookup.done", self._on_done),
            ("lookup.failed", self._on_failed),
            ("flood.fanout", self._on_fanout),
            ("data.stored", self._on_stored),
            ("replica.commit", self._on_replica_commit),
            ("replica.failover", self._on_replica_failover),
            ("replica.repair", self._on_replica_repair),
            ("replica.lag", self._on_replica_lag),
            ("swarm.piece", self._on_swarm_piece),
            ("swarm.holders", self._on_swarm_holders),
        ]
        pairs.extend((cat, self._on_membership) for cat in MEMBERSHIP_CATEGORIES)
        for cat, fn in pairs:
            self.bus.subscribe(cat, fn)
            self._installed.append((cat, fn))

    def detach(self) -> None:
        for cat, fn in self._installed:
            self.bus.unsubscribe(cat, fn)
        self._installed.clear()

    # ------------------------------------------------------------------
    def _on_send(self, rec: TraceRecord) -> None:
        self._frames.labels("tx", rec.payload.get("kind", "?")).inc()

    def _on_hop(self, rec: TraceRecord) -> None:
        self._hop_events.labels(rec.payload.get("kind", "?")).inc()

    def _on_done(self, rec: TraceRecord) -> None:
        p = rec.payload
        self._lookups_ok.inc()
        self._hops.observe(p.get("hops", 0))
        self._contacts.observe(p.get("contacts", 0))
        self._latency.observe(p.get("latency", 0.0))

    def _on_failed(self, rec: TraceRecord) -> None:
        self._lookups_fail.inc()

    def _on_fanout(self, rec: TraceRecord) -> None:
        self._fanout.observe(rec.payload.get("fanout", 0))

    def _on_stored(self, rec: TraceRecord) -> None:
        self._stored.inc()

    def _on_membership(self, rec: TraceRecord) -> None:
        self._peer_events.labels(rec.category).inc()

    def _on_replica_commit(self, rec: TraceRecord) -> None:
        if rec.payload.get("committed", False):
            self._quorum_latency.observe(rec.payload.get("latency", 0.0))

    def _on_replica_failover(self, rec: TraceRecord) -> None:
        self._failover.labels(rec.payload.get("kind", "?")).inc()

    def _on_replica_repair(self, rec: TraceRecord) -> None:
        self._repair_items.inc(rec.payload.get("items", 0))

    def _on_replica_lag(self, rec: TraceRecord) -> None:
        self._replica_lag.set(float(rec.payload.get("items", 0)))

    def _on_swarm_piece(self, rec: TraceRecord) -> None:
        self._swarm_pieces.labels(rec.payload.get("dir", "?")).inc()
        latency = rec.payload.get("latency")
        if latency is not None:
            self._swarm_piece_latency.observe(float(latency))

    def _on_swarm_holders(self, rec: TraceRecord) -> None:
        self._swarm_holders.set(float(rec.payload.get("holders", 0)))
