"""Dependency-free metrics registry: counters, gauges, histograms.

The same registry backs both execution modes of the reproduction:

* a live :class:`~repro.runtime.node.PeerNode` updates instruments
  directly (wire frames, bytes, transport retries) and exposes them on
  its ``/metrics`` endpoint (:mod:`repro.obs.prom`);
* a simulator run attaches a :class:`~repro.obs.bridge.TraceBridge`
  that subscribes the *same instrument names* to the experiment's
  :class:`~repro.sim.trace.TraceBus`, so live and simulated runs of the
  same topology produce directly comparable series (the cross-mode
  validation the paper's measured claims call for).

Design constraints, in order: always-on cheap (one dict lookup + one
int add on the hot path; label children are cached and can be bound
once outside loops), stdlib-only, and faithful to the Prometheus data
model (monotone counters, fixed-bucket cumulative histograms) so the
text exposition in :mod:`repro.obs.prom` is mechanical.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_HOP_BUCKETS",
    "DEFAULT_LATENCY_MS_BUCKETS",
    "DEFAULT_CLIENT_LATENCY_MS_BUCKETS",
    "DEFAULT_CONTACT_BUCKETS",
    "DEFAULT_FANOUT_BUCKETS",
]

# Bucket ladders shared by the live runtime and the sim bridge.  Hops
# are small integers (ring walks + tree depth); contacts/fan-out grow
# geometrically; latency is in protocol milliseconds.
DEFAULT_HOP_BUCKETS: Tuple[float, ...] = (0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24)
DEFAULT_LATENCY_MS_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 30_000, 60_000
)
# Client ops on a localhost/LAN cluster complete in fractions of a
# millisecond once the lookup path is event-driven, so this ladder
# starts two decades below the protocol-latency one.
DEFAULT_CLIENT_LATENCY_MS_BUCKETS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1_000,
    2_500, 5_000, 10_000,
)
DEFAULT_CONTACT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
DEFAULT_FANOUT_BUCKETS: Tuple[float, ...] = (0, 1, 2, 3, 4, 6, 8, 12, 16)


class Counter:
    """Monotonically increasing value (one labelled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """Point-in-time value; may also be function-backed (read at scrape)."""

    __slots__ = ("value", "fn")

    def __init__(self) -> None:
        self.value = 0.0
        self.fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Evaluate ``fn`` at scrape time instead of storing a value."""
        self.fn = fn

    def read(self) -> float:
        return float(self.fn()) if self.fn is not None else self.value


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``bounds`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches the overflow.  ``counts[i]`` is *non*-cumulative per bucket
    (cumulated only at render time, keeping ``observe`` to one index
    increment).
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Counts as cumulative ``le`` buckets (last entry == count)."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimated q-quantile via linear interpolation inside buckets.

        Mirrors Prometheus' ``histogram_quantile``: NaN when empty, the
        highest finite bound when the quantile lands in ``+Inf``.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        running = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if running + c >= rank:
                if i >= len(self.bounds):  # +Inf bucket
                    return self.bounds[-1] if self.bounds else float("nan")
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                return lo + (hi - lo) * ((rank - running) / c)
            running += c
        return self.bounds[-1] if self.bounds else float("nan")


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one metric name, keyed by label-value tuples."""

    __slots__ = ("name", "kind", "help", "labelnames", "buckets", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[Tuple[str, ...], Any] = {}

    # ------------------------------------------------------------------
    def labels(self, *values: object) -> Any:
        """The child instrument for one label-value combination.

        Children are created on first use and cached; hot paths should
        bind the returned child once rather than re-resolving per event.
        """
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            if len(key) != len(self.labelnames):
                raise ValueError(
                    f"{self.name} expects labels {self.labelnames}, got {key}"
                )
            if self.kind == "histogram":
                child = Histogram(self.buckets or DEFAULT_LATENCY_MS_BUCKETS)
            else:
                child = _KINDS[self.kind]()
            self._children[key] = child
        return child

    def children(self) -> Iterable[Tuple[Tuple[str, ...], Any]]:
        return self._children.items()

    # Label-less convenience: family doubles as its single child.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self.labels().set_function(fn)

    def observe(self, value: float) -> None:
        self.labels().observe(value)


class MetricsRegistry:
    """Declares and holds metric families.

    Declaration is idempotent: re-declaring a name with the same kind
    and label names returns the existing family (the sim bridge and the
    live transport can both declare the shared catalogue without
    coordinating); a conflicting re-declaration raises.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    def _declare(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        names = tuple(labelnames)
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind or fam.labelnames != names:
                raise ValueError(
                    f"metric {name!r} already declared as {fam.kind}"
                    f"{fam.labelnames}, not {kind}{names}"
                )
            return fam
        fam = MetricFamily(name, kind, help, names, buckets)
        self._families[name] = fam
        return fam

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._declare(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._declare(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_MS_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> MetricFamily:
        return self._declare(name, "histogram", help, labelnames, buckets)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able dump of every family (the ``/metrics.json`` body).

        Histograms carry their bucket bounds plus *non*-cumulative
        counts, sum and count -- enough to reconstruct quantiles and
        rates client-side (see :mod:`repro.obs.top`).
        """
        out: Dict[str, Any] = {}
        for fam in self.families():
            samples = []
            for key, child in sorted(fam.children()):
                labels = dict(zip(fam.labelnames, key))
                if fam.kind == "histogram":
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": list(fam.buckets or ()),
                            "counts": list(child.counts),
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                elif fam.kind == "gauge":
                    samples.append({"labels": labels, "value": child.read()})
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[fam.name] = {
                "type": fam.kind,
                "help": fam.help,
                "samples": samples,
            }
        return out
