"""repro.obs -- unified observability for the simulator and live runtime.

One metric catalogue, two producers:

* the **simulator** attaches a :class:`~repro.obs.bridge.TraceBridge`
  to an experiment's :class:`~repro.sim.trace.TraceBus`;
* a **live node** feeds the same-named instruments directly (transport
  counters) and through its own bus+bridge (protocol trace events), and
  serves them over HTTP ``/metrics`` (Prometheus text exposition
  v0.0.4), ``/metrics.json`` and ``/healthz`` on its listen port.

See ``docs/OBSERVABILITY.md`` for the metric name catalogue and label
conventions.
"""

from .bridge import MEMBERSHIP_CATEGORIES, TraceBridge, declare_protocol_metrics
from .prom import CONTENT_TYPE_PROM, handle_http_request, render_json, render_prometheus
from .registry import (
    DEFAULT_CLIENT_LATENCY_MS_BUCKETS,
    DEFAULT_CONTACT_BUCKETS,
    DEFAULT_FANOUT_BUCKETS,
    DEFAULT_HOP_BUCKETS,
    DEFAULT_LATENCY_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from .top import fetch_snapshot, render_top, run_top, snapshot_delta

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_HOP_BUCKETS",
    "DEFAULT_LATENCY_MS_BUCKETS",
    "DEFAULT_CLIENT_LATENCY_MS_BUCKETS",
    "DEFAULT_CONTACT_BUCKETS",
    "DEFAULT_FANOUT_BUCKETS",
    "TraceBridge",
    "declare_protocol_metrics",
    "MEMBERSHIP_CATEGORIES",
    "CONTENT_TYPE_PROM",
    "render_prometheus",
    "render_json",
    "handle_http_request",
    "fetch_snapshot",
    "snapshot_delta",
    "render_top",
    "run_top",
]
