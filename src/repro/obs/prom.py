"""Prometheus text exposition (v0.0.4) and the node HTTP endpoint.

``render_prometheus`` turns a :class:`~repro.obs.registry.MetricsRegistry`
into the plain-text format every Prometheus-compatible scraper speaks;
``handle_http_request`` implements the tiny request router the node
daemons mount on their existing listen port (the framed protocol and
HTTP are disambiguated by sniffing the first bytes of a connection --
see ``NodeDaemon._serve_conn``).  No sockets here: this module is pure
bytes-in/bytes-out so it is trivially testable.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional, Tuple

from .registry import MetricsRegistry

__all__ = [
    "CONTENT_TYPE_PROM",
    "render_prometheus",
    "render_json",
    "handle_http_request",
]

CONTENT_TYPE_PROM = "text/plain; version=0.0.4; charset=utf-8"


def _fmt_value(v: float) -> str:
    # Prometheus accepts both, but whole numbers read better unpadded.
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(float(v))


def _fmt_labels(labels: Dict[str, str], extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = [*labels.items(), *extra]
    if not items:
        return ""
    body = ",".join(
        f'{k}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in items
    )
    return "{" + body + "}"


def _fmt_le(bound: float) -> str:
    return _fmt_value(bound)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The full registry in Prometheus text exposition format v0.0.4."""
    lines = []
    for fam in registry.families():
        if fam.help:
            lines.append(f"# HELP {fam.name} {fam.help}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        for key, child in sorted(fam.children()):
            labels = dict(zip(fam.labelnames, key))
            if fam.kind == "histogram":
                cumulative = child.cumulative()
                for bound, c in zip(child.bounds, cumulative):
                    lines.append(
                        f"{fam.name}_bucket"
                        f"{_fmt_labels(labels, (('le', _fmt_le(bound)),))} {c}"
                    )
                lines.append(
                    f'{fam.name}_bucket{_fmt_labels(labels, (("le", "+Inf"),))} '
                    f"{child.count}"
                )
                lines.append(f"{fam.name}_sum{_fmt_labels(labels)} {_fmt_value(child.sum)}")
                lines.append(f"{fam.name}_count{_fmt_labels(labels)} {child.count}")
            elif fam.kind == "gauge":
                lines.append(f"{fam.name}{_fmt_labels(labels)} {_fmt_value(child.read())}")
            else:
                lines.append(f"{fam.name}{_fmt_labels(labels)} {_fmt_value(child.value)}")
    return "\n".join(lines) + "\n"


def render_json(registry: MetricsRegistry) -> str:
    return json.dumps(registry.snapshot(), sort_keys=True)


def _http_response(
    status: str, content_type: str, body: bytes
) -> bytes:
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


def handle_http_request(
    request_line: str,
    registry: MetricsRegistry,
    health: Optional[Callable[[], Dict[str, Any]]] = None,
) -> bytes:
    """Route one HTTP request line to a full response.

    Supports exactly what a scraper needs: ``GET /metrics`` (Prometheus
    text), ``GET /metrics.json`` (the registry snapshot, consumed by
    ``repro top``), and ``GET /healthz`` (liveness JSON from the
    ``health`` callable).  ``HEAD`` gets headers only; everything else
    is 404/405.
    """
    parts = request_line.split()
    if len(parts) < 2:
        return _http_response("400 Bad Request", "text/plain", b"bad request\n")
    method, path = parts[0], parts[1].split("?", 1)[0]
    if method not in ("GET", "HEAD"):
        return _http_response("405 Method Not Allowed", "text/plain", b"GET only\n")

    if path == "/metrics":
        body = render_prometheus(registry).encode("utf-8")
        ctype = CONTENT_TYPE_PROM
    elif path == "/metrics.json":
        body = render_json(registry).encode("utf-8")
        ctype = "application/json"
    elif path == "/healthz":
        payload = health() if health is not None else {"ok": True}
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        ctype = "application/json"
    else:
        return _http_response("404 Not Found", "text/plain", b"not found\n")

    if method == "HEAD":
        # Headers advertise the body a GET would return, body omitted.
        head = _http_response("200 OK", ctype, body)
        return head[: len(head) - len(body)]
    return _http_response("200 OK", ctype, body)
