"""``repro top`` -- a refreshing rates/latency table for a live node.

Polls ``http://HOST:PORT/metrics.json`` (the registry snapshot the node
serves next to its Prometheus endpoint), computes per-interval rates
from successive counter samples and p50/p99 estimates from histogram
buckets, and renders the result with the project's fixed-width table
formatter.  Stdlib-only (urllib) and read-only: attaching ``repro top``
to a node changes nothing about the node beyond serving the scrape.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from ..metrics.report import format_table
from .registry import Histogram

__all__ = ["fetch_snapshot", "snapshot_delta", "render_top", "run_top"]


def fetch_snapshot(host: str, port: int, timeout: float = 5.0) -> Dict[str, Any]:
    """One ``/metrics.json`` scrape, parsed."""
    url = f"http://{host}:{port}/metrics.json"
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _counter_total(snapshot: Dict[str, Any], name: str) -> float:
    fam = snapshot.get(name)
    if not fam:
        return 0.0
    return sum(s.get("value", 0.0) for s in fam.get("samples", ()))


def _histogram_of(snapshot: Dict[str, Any], name: str) -> Optional[Histogram]:
    """Rebuild a summable Histogram from a snapshot's bucket counts."""
    fam = snapshot.get(name)
    if not fam or fam.get("type") != "histogram":
        return None
    merged: Optional[Histogram] = None
    for s in fam.get("samples", ()):
        h = Histogram(s.get("buckets", ()))
        counts = s.get("counts", ())
        h.counts = list(counts) + [0] * (len(h.counts) - len(counts))
        h.sum = float(s.get("sum", 0.0))
        h.count = int(s.get("count", 0))
        if merged is None:
            merged = h
        elif merged.bounds == h.bounds:
            merged.counts = [a + b for a, b in zip(merged.counts, h.counts)]
            merged.sum += h.sum
            merged.count += h.count
    return merged


def snapshot_delta(
    prev: Dict[str, Any], cur: Dict[str, Any], elapsed: float
) -> List[Tuple[str, str, str, str]]:
    """Rows of (series, rate/s, p50, p99) between two scrapes."""
    elapsed = max(elapsed, 1e-9)
    rows: List[Tuple[str, str, str, str]] = []

    def rate(name: str) -> float:
        return (_counter_total(cur, name) - _counter_total(prev, name)) / elapsed

    for label, name in (
        ("frames", "repro_frames_total"),
        ("wire bytes", "repro_wire_bytes_total"),
        ("lookups", "repro_lookups_total"),
        ("hop events", "repro_lookup_hop_events_total"),
        ("drops", "repro_frames_dropped_total"),
        ("backpressure", "repro_tx_backpressure_total"),
        ("failovers", "repro_failover_total"),
        ("repair items", "repro_replica_repair_items_total"),
        ("swarm pieces", "repro_swarm_pieces_total"),
    ):
        rows.append((label, f"{rate(name):.1f}/s", "-", "-"))

    # Gauge, not counter: current outbound queue occupancy (all
    # destinations summed) at the instant of the scrape.
    rows.append(
        ("tx queue depth", f"{_counter_total(cur, 'repro_tx_queue_depth'):.0f}", "-", "-")
    )
    rows.append(
        ("replica lag", f"{_counter_total(cur, 'repro_replica_lag'):.0f}", "-", "-")
    )
    rows.append(
        ("swarm holders", f"{_counter_total(cur, 'repro_swarm_holders'):.0f}", "-", "-")
    )

    for label, name in (
        ("lookup hops", "repro_lookup_hops"),
        ("lookup contacts", "repro_lookup_contacts"),
        ("lookup latency ms", "repro_lookup_latency_ms"),
        ("flood fanout", "repro_flood_fanout"),
        ("quorum write ms", "repro_write_quorum_latency_ms"),
        ("swarm piece ms", "repro_swarm_piece_latency_ms"),
    ):
        hist = _histogram_of(cur, name)
        if hist is None or hist.count == 0:
            rows.append((label, "0.0/s", "-", "-"))
            continue
        prev_hist = _histogram_of(prev, name)
        observed = hist.count - (prev_hist.count if prev_hist else 0)
        rows.append(
            (
                label,
                f"{observed / elapsed:.1f}/s",
                f"{hist.quantile(0.5):.1f}",
                f"{hist.quantile(0.99):.1f}",
            )
        )
    return rows


def render_top(
    host: str, port: int, prev: Dict[str, Any], cur: Dict[str, Any], elapsed: float
) -> str:
    rows = snapshot_delta(prev, cur, elapsed)
    uptime = 0.0
    fam = cur.get("repro_uptime_seconds")
    if fam and fam.get("samples"):
        uptime = fam["samples"][0].get("value", 0.0)
    title = f"repro top -- {host}:{port} (uptime {uptime:.0f}s)"
    return format_table(("series", "rate", "p50", "p99"), rows, title=title)


def run_top(
    host: str,
    port: int,
    interval: float = 2.0,
    count: int = 0,
    out=None,
) -> None:
    """Refresh loop: scrape, diff, render; ``count=0`` runs until ^C.

    ``count`` bounds the number of rendered frames (used by tests and
    one-shot inspection); the first scrape only seeds the baseline.
    """
    out = out if out is not None else sys.stdout
    prev = fetch_snapshot(host, port)
    prev_t = time.monotonic()
    frames = 0
    try:
        while count <= 0 or frames < count:
            time.sleep(interval)
            cur = fetch_snapshot(host, port)
            now = time.monotonic()
            table = render_top(host, port, prev, cur, now - prev_t)
            if out is sys.stdout and out.isatty():
                out.write("\x1b[2J\x1b[H")  # clear screen, home cursor
            out.write(table + "\n")
            out.flush()
            prev, prev_t = cur, now
            frames += 1
    except KeyboardInterrupt:
        pass
