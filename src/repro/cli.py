"""Command-line interface.

`python -m repro <command>` (or the `repro` console script):

* ``repro demo`` -- build a system, run a workload, print the metrics;
* ``repro experiment <name>`` -- regenerate one paper table/figure
  (fig3, fig4, fig5, fig6, table2, maintenance) at a chosen scale;
* ``repro sweep`` -- sweep p_s over a grid and print the metric trio
  (latency / failure ratio / connum) per point;

``experiment`` and ``sweep`` fan their cells out over worker processes
(``--jobs``, default ``REPRO_JOBS`` or all cores) and memoize results
in the content-addressed cell cache (``~/.cache/repro-cells/`` or
``$REPRO_CELL_CACHE``; ``--no-cache`` disables) -- see
:mod:`repro.exec` and EXPERIMENTS.md "Running paper scale fast";
* ``repro analyze`` -- print the Section 4 closed-form tables.

Live-runtime verbs (real TCP; see :mod:`repro.runtime`):

* ``repro serve`` -- run the bootstrap/directory daemon;
* ``repro node --join HOST:PORT`` -- run one live peer;
* ``repro put KEY VALUE --node HOST:PORT`` / ``repro get KEY --node
  HOST:PORT`` -- store/fetch through a running node;
* ``repro put-file KEY FILE`` / ``repro get-file KEY`` -- chunked bulk
  transfer over the tracker-mode swarm plane (needs nodes started with
  ``--set swarm_enabled=true``; every piece is hash-verified);
* ``repro status --node HOST:PORT`` -- JSON snapshot of a node or the
  bootstrap directory (``--pretty`` indents, ``--metrics`` folds in the
  node's metrics-registry snapshot);
* ``repro top --node HOST:PORT`` -- refreshing table of frame/lookup
  rates and hop/latency p50/p99 scraped from the node's ``/metrics.json``
  endpoint (see docs/OBSERVABILITY.md);
* ``repro bench-clients`` -- open/closed-loop client-path load
  generator (:mod:`repro.loadgen`); ``--smoke`` is the CI gate.

Every simulator command takes ``--seed``; runs are bit-reproducible.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Tuple

from .core import HybridConfig, HybridSystem
from .experiments import Scale
from .metrics import format_table
from .workloads import KeyWorkload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'An Efficient Hybrid Peer-to-Peer System for "
            "Distributed Data Sharing' (Yang & Yang)"
        ),
    )
    from . import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="build a system and run a workload")
    demo.add_argument("--peers", type=int, default=200)
    demo.add_argument("--ps", type=float, default=0.7, help="fraction of s-peers")
    demo.add_argument("--delta", type=int, default=3)
    demo.add_argument("--ttl", type=int, default=4)
    demo.add_argument("--keys", type=int, default=600)
    demo.add_argument("--lookups", type=int, default=600)
    demo.add_argument("--zipf", type=float, default=0.0)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--placement", choices=["direct", "spread"], default="spread")
    demo.add_argument("--bittorrent", action="store_true")
    demo.add_argument("--cache", action="store_true")

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument(
        "name",
        choices=[
            "fig3", "fig4", "fig5", "fig6", "table2",
            "maintenance", "comparison", "stress", "churn", "replication",
            "swarm",
        ],
    )
    exp.add_argument("--scale", choices=["quick", "medium", "paper"], default="quick")
    exp.add_argument("--seed", type=int, default=0)
    _add_executor_args(exp)

    sweep = sub.add_parser("sweep", help="sweep p_s and print the metric trio")
    sweep.add_argument("--peers", type=int, default=120)
    sweep.add_argument("--keys", type=int, default=360)
    sweep.add_argument("--lookups", type=int, default=360)
    sweep.add_argument("--ttl", type=int, default=4)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--grid",
        type=float,
        nargs="+",
        default=[0.0, 0.2, 0.4, 0.6, 0.8, 0.9],
    )
    _add_executor_args(sweep)

    analyze = sub.add_parser("analyze", help="print the Section 4 closed forms")
    analyze.add_argument("--peers", type=int, default=1000)
    analyze.add_argument("--points", type=int, default=11)

    serve = sub.add_parser("serve", help="run the live bootstrap daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7401)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--ps", type=float, default=0.5, help="fraction of s-peers")
    serve.add_argument("--codec", type=int, default=None, choices=(1, 2),
                       help="wire format to encode with (default: v2; "
                       "both are always decoded)")
    serve.add_argument("--set", action="append", metavar="KEY=VALUE",
                       dest="overrides", default=None,
                       help="override a HybridConfig field (repeatable), "
                       "e.g. --set replication_factor=3 --set write_quorum=2")

    node = sub.add_parser("node", help="run one live peer")
    node.add_argument("--join", required=True, metavar="HOST:PORT",
                      help="bootstrap daemon endpoint")
    node.add_argument("--host", default="127.0.0.1")
    node.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    node.add_argument("--seed", type=int, default=0)
    node.add_argument("--capacity", type=float, default=1.0)
    node.add_argument("--codec", type=int, default=None, choices=(1, 2),
                      help="wire format to encode with (default: v2; "
                      "both are always decoded)")
    node.add_argument("--set", action="append", metavar="KEY=VALUE",
                      dest="overrides", default=None,
                      help="override a HybridConfig field (repeatable), "
                      "e.g. --set replication_factor=3 --set write_quorum=2")

    put = sub.add_parser("put", help="store KEY=VALUE through a live node")
    put.add_argument("key")
    put.add_argument("value")
    put.add_argument("--node", required=True, metavar="HOST:PORT")
    put.add_argument("--timeout", type=float, default=10.0)

    get = sub.add_parser("get", help="look KEY up through a live node")
    get.add_argument("key")
    get.add_argument("--node", required=True, metavar="HOST:PORT")
    get.add_argument("--timeout", type=float, default=15.0)

    put_file = sub.add_parser(
        "put-file",
        help="publish FILE under KEY as hashed pieces + manifest (swarm)",
    )
    put_file.add_argument("key")
    put_file.add_argument("path", help="file to publish ('-' reads stdin)")
    put_file.add_argument("--node", required=True, metavar="HOST:PORT")
    put_file.add_argument("--piece-size", type=int, default=65536,
                          help="bytes per piece (default 64 KiB)")
    put_file.add_argument("--timeout", type=float, default=30.0)

    get_file = sub.add_parser(
        "get-file",
        help="fetch KEY's content via the swarm plane, verify every piece",
    )
    get_file.add_argument("key")
    get_file.add_argument("--node", required=True, metavar="HOST:PORT")
    get_file.add_argument("--out", metavar="FILE", default=None,
                          help="write the bytes here (default: stdout)")
    get_file.add_argument("--timeout", type=float, default=60.0)

    status = sub.add_parser("status", help="JSON status of a live node/server")
    status.add_argument("--node", required=True, metavar="HOST:PORT")
    status.add_argument("--timeout", type=float, default=10.0)
    status.add_argument("--pretty", action="store_true",
                        help="indent the JSON output")
    status.add_argument("--metrics", action="store_true",
                        help="include the node's full metrics snapshot")

    top = sub.add_parser(
        "top", help="refreshing rates/latency table for a live node"
    )
    top.add_argument("--node", required=True, metavar="HOST:PORT")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between scrapes")
    top.add_argument("--count", type=int, default=0,
                     help="number of frames to render (0 = until ^C)")

    bench = sub.add_parser(
        "bench-clients",
        help="drive concurrent clients against live nodes, report latency",
    )
    bench.add_argument(
        "--node", action="append", metavar="HOST:PORT", default=None,
        help="target node (repeatable; omit to boot an in-process localnet)",
    )
    bench.add_argument("--clients", type=int, default=4,
                       help="persistent client connections")
    bench.add_argument("--pipeline", type=int, default=16,
                       help="concurrent in-flight ops per connection "
                       "(closed loop)")
    bench.add_argument("--duration", type=float, default=5.0,
                       help="measured seconds (after warmup)")
    bench.add_argument("--warmup", type=float, default=0.5,
                       help="seconds driven but not recorded")
    bench.add_argument("--get-fraction", type=float, default=0.9,
                       help="fraction of ops that are gets (rest are puts)")
    bench.add_argument("--keyspace", type=int, default=256,
                       help="distinct keys (pre-stored before the run)")
    bench.add_argument("--rate", type=float, default=None,
                       help="open-loop dispatch rate in total ops/s "
                       "(default: closed loop)")
    bench.add_argument("--timeout", type=float, default=10.0)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--output", metavar="FILE", default=None,
                       help="append the result JSON to FILE "
                       "(e.g. BENCH_clientpath.json)")
    bench.add_argument("--smoke", action="store_true",
                       help="CI mode: short run against an in-process "
                       "localnet, exit 1 unless get throughput clears "
                       "10x the polling-era baseline with zero errors")

    return parser


def _add_executor_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweep cells (default: REPRO_JOBS or all "
        "cores; 1 = inline, no subprocesses)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell instead of using the on-disk cell cache "
        "(~/.cache/repro-cells or $REPRO_CELL_CACHE)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="worker shards per cell (default: REPRO_SHARDS or 1); the "
        "sharded run is bit-identical to the single-process run",
    )
    parser.add_argument(
        "--shard-backend",
        choices=("pipe", "shm"),
        default=None,
        help="cross-shard transport (default: REPRO_SHARD_BACKEND or "
        "pipe); shm = struct-encoded shared-memory rings",
    )
    parser.add_argument(
        "--shards-strict",
        action="store_true",
        default=None,
        help="fail instead of silently running a cell single-process "
        "when its config is not shardable (also: REPRO_SHARDS_STRICT=1)",
    )


def _make_executor(args: argparse.Namespace):
    from .exec import CellCache, CellExecutor
    from .shard import (
        SHARDS_STRICT_ENV,
        resolve_shard_backend,
        resolve_shards,
    )

    if getattr(args, "shards_strict", None):
        # Propagated via the environment so pool worker processes --
        # where run_cell's fallback decision happens -- inherit it.
        os.environ[SHARDS_STRICT_ENV] = "1"
    backend = getattr(args, "shard_backend", None)
    return CellExecutor(
        jobs=args.jobs,
        cache=None if args.no_cache else CellCache(),
        progress=sys.stderr.isatty(),
        shards=resolve_shards(getattr(args, "shards", None)),
        shard_backend=resolve_shard_backend(backend) if backend else None,
    )


def _report_executor(name: str, executor) -> None:
    """Summary line on stderr (parsed by scripts/sweep_smoke.py)."""
    if executor.stats.cells_total:
        print(f"[sweep] {name}: {executor.summary()}", file=sys.stderr)


def _parse_endpoint(text: str) -> Tuple[str, int]:
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(f"expected HOST:PORT, got {text!r}")
    return host or "127.0.0.1", int(port)


def _cmd_demo(args: argparse.Namespace) -> int:
    config = HybridConfig(
        p_s=args.ps,
        delta=args.delta,
        ttl=args.ttl,
        placement=args.placement,
        snetwork_style="bittorrent" if args.bittorrent else "gnutella",
        cache_enabled=args.cache,
    )
    system = HybridSystem(config, n_peers=args.peers, seed=args.seed)
    system.build()
    peers = [p.address for p in system.alive_peers()]
    workload = KeyWorkload.uniform(
        args.keys, peers, system.rngs.stream("cli"), zipf_s=args.zipf
    )
    system.populate(workload.store_plan())
    system.run_lookups(workload.sample_lookups(args.lookups, peers))
    stats = system.query_stats()
    print(
        format_table(
            ["metric", "value"],
            [
                ["peers (t / s)", f"{len(system.t_peers())} / {len(system.s_peers())}"],
                ["items stored", system.total_items()],
                ["lookups", stats.total],
                ["failure ratio", f"{stats.failure_ratio:.4f}"],
                ["mean latency (ms)", f"{stats.mean_latency:.1f}"],
                ["median latency (ms)", f"{stats.median_latency:.1f}"],
                ["connum", stats.connum],
                ["local lookups", f"{stats.local_fraction:.1%}"],
            ],
            title=f"hybrid P2P demo (p_s={args.ps}, seed={args.seed})",
        )
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    scale = {"quick": Scale.quick, "medium": Scale.medium, "paper": Scale.paper}[
        args.scale
    ](seed=args.seed)
    executor = _make_executor(args)
    if args.name == "fig3":
        from .experiments import fig3_analysis

        print(fig3_analysis.main(points=11))
    elif args.name == "fig4":
        from .experiments import fig4_distribution

        print(fig4_distribution.main(scale, executor=executor))
    elif args.name == "fig5":
        from .experiments import fig5_failure

        print(fig5_failure.main(scale, executor=executor))
    elif args.name == "fig6":
        from .experiments import fig6_latency

        print(fig6_latency.main(scale, executor=executor))
    elif args.name == "table2":
        from .experiments import table2_connum

        print(table2_connum.main(scale, executor=executor))
    elif args.name == "maintenance":
        from .experiments import ext_maintenance

        print(ext_maintenance.main(n_peers=scale.n_peers, executor=executor))
    elif args.name == "comparison":
        from .experiments import ext_comparison

        print(
            ext_comparison.main(
                n_peers=scale.n_peers, seed=args.seed, executor=executor
            )
        )
    elif args.name == "stress":
        from .experiments import ext_stress

        print(ext_stress.main(n_peers=scale.n_peers, executor=executor))
    elif args.name == "churn":
        from .experiments import ext_churn

        print(ext_churn.main(n_peers=min(scale.n_peers, 100), executor=executor))
    elif args.name == "replication":
        from .experiments import ext_replication

        print(
            ext_replication.main(n_peers=min(scale.n_peers, 120), executor=executor)
        )
    else:
        from .experiments import ext_swarm

        print(ext_swarm.main(n_peers=min(scale.n_peers, 60), seed=args.seed))
    _report_executor(args.name, executor)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .exec import CellSpec

    executor = _make_executor(args)
    scale = Scale(
        n_peers=args.peers,
        n_keys=args.keys,
        n_lookups=args.lookups,
        seed=args.seed,
    )
    specs = [
        CellSpec(HybridConfig(p_s=p_s, ttl=args.ttl), scale, tag="sweep")
        for p_s in args.grid
    ]
    rows = [
        [
            f"{cell.p_s:.1f}",
            f"{cell.mean_latency:.0f}",
            f"{cell.failure_ratio:.3f}",
            cell.connum,
        ]
        for cell in executor.map(specs)
    ]
    print(
        format_table(
            ["p_s", "latency (ms)", "failure", "connum"],
            rows,
            title=f"p_s sweep (N={args.peers}, TTL={args.ttl})",
        )
    )
    _report_executor("sweep", executor)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .experiments import fig3_analysis

    print(fig3_analysis.main(n_peers=args.peers, points=args.points))
    return 0


# ----------------------------------------------------------------------
# Live-runtime verbs
# ----------------------------------------------------------------------
def _run_daemon(daemon) -> int:
    import asyncio

    async def _serve() -> None:
        await daemon.start()
        print(f"listening on {daemon.host}:{daemon.port}", flush=True)
        try:
            await asyncio.Event().wait()  # run until interrupted
        finally:
            await daemon.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _codec_kwargs(args: argparse.Namespace) -> dict:
    """``codec_version=`` kwarg from the optional ``--codec`` flag."""
    if getattr(args, "codec", None) is None:
        return {}
    return {"codec_version": args.codec}


def _apply_config_overrides(config: HybridConfig, pairs) -> HybridConfig:
    """Apply repeatable ``--set KEY=VALUE`` flags to a config.

    Values are coerced by the target field's declared type (bool accepts
    true/false/yes/no/on/off/1/0), so subprocess daemons -- the
    failover-smoke harness, localnet scripts -- can receive any
    replication/liveness knob without a dedicated CLI flag each.
    """
    if not pairs:
        return config
    import dataclasses

    types = {f.name: f.type for f in dataclasses.fields(HybridConfig)}
    changes = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"error: --set expects KEY=VALUE, got {pair!r}")
        if key not in types:
            raise SystemExit(f"error: unknown config field {key!r}")
        ftype = types[key]
        if ftype in ("bool", bool):
            low = raw.strip().lower()
            if low in ("1", "true", "yes", "on"):
                changes[key] = True
            elif low in ("0", "false", "no", "off"):
                changes[key] = False
            else:
                raise SystemExit(f"error: {key} expects a boolean, got {raw!r}")
        elif ftype in ("int", int):
            changes[key] = int(raw)
        elif ftype in ("float", float):
            changes[key] = float(raw)
        else:
            changes[key] = raw
    try:
        return config.with_changes(**changes)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _cmd_serve(args: argparse.Namespace) -> int:
    from .runtime import BootstrapNode

    config = _apply_config_overrides(
        HybridConfig(p_s=args.ps), getattr(args, "overrides", None)
    )
    return _run_daemon(
        BootstrapNode(
            args.host, args.port, config, seed=args.seed, **_codec_kwargs(args)
        )
    )


def _cmd_node(args: argparse.Namespace) -> int:
    import asyncio

    from .runtime import PeerNode, pack_endpoint

    host, port = _parse_endpoint(args.join)
    config = _apply_config_overrides(
        HybridConfig(server_address=pack_endpoint(host, port)),
        getattr(args, "overrides", None),
    )
    daemon = PeerNode(
        args.host, args.port, config, seed=args.seed, capacity=args.capacity,
        **_codec_kwargs(args),
    )

    async def _serve() -> None:
        await daemon.start()
        await daemon.join()
        print(
            f"listening on {daemon.host}:{daemon.port} "
            f"(role={daemon.peer.role}, p_id={daemon.peer.p_id})",
            flush=True,
        )
        try:
            await asyncio.Event().wait()
        finally:
            await daemon.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _client_verb(args: argparse.Namespace, msg, pretty: bool = True) -> int:
    from .runtime import call

    host, port = _parse_endpoint(args.node)
    try:
        reply = call(host, port, msg, timeout=args.timeout)
    except (OSError, ConnectionError, TimeoutError) as exc:
        print(f"error: cannot reach {host}:{port}: {exc}", file=sys.stderr)
        return 1
    if not reply.ok:
        print(f"error: {reply.error}", file=sys.stderr)
        return 1
    print(json.dumps(reply.payload, indent=2 if pretty else None, sort_keys=True))
    return 0


def _cmd_put(args: argparse.Namespace) -> int:
    from .runtime import ClientPut

    return _client_verb(args, ClientPut(key=args.key, value=args.value))


def _cmd_get(args: argparse.Namespace) -> int:
    from .runtime import ClientGet

    return _client_verb(args, ClientGet(key=args.key))


def _cmd_put_file(args: argparse.Namespace) -> int:
    import asyncio

    from .runtime import ClientConnection, put_file

    if args.path == "-":
        data = sys.stdin.buffer.read()
    else:
        try:
            with open(args.path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
            return 1
    host, port = _parse_endpoint(args.node)

    async def _run():
        async with ClientConnection(host, port) as conn:
            return await put_file(
                conn, args.key, data,
                piece_size=args.piece_size, timeout=args.timeout,
            )

    try:
        reply = asyncio.run(_run())
    except (OSError, ConnectionError, TimeoutError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(reply.payload, indent=2, sort_keys=True))
    return 0


def _cmd_get_file(args: argparse.Namespace) -> int:
    import asyncio

    from .runtime import ClientConnection, get_file

    host, port = _parse_endpoint(args.node)

    async def _run():
        async with ClientConnection(host, port) as conn:
            return await get_file(conn, args.key, timeout=args.timeout)

    try:
        data = asyncio.run(_run())
    except (OSError, ConnectionError, TimeoutError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "wb") as fh:
            fh.write(data)
        print(f"wrote {len(data)} bytes to {args.out}", file=sys.stderr)
    else:
        sys.stdout.buffer.write(data)
        sys.stdout.buffer.flush()
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from .runtime import ClientStatus

    return _client_verb(
        args,
        ClientStatus(include_metrics=args.metrics),
        pretty=args.pretty,
    )


def _cmd_bench_clients(args: argparse.Namespace) -> int:
    from .loadgen import (
        POLLING_ERA_GET_OPS,
        LoadSpec,
        run_against_localnet,
        run_load_sync,
        smoke_result_ok,
    )

    spec_kwargs = dict(
        clients=args.clients,
        pipeline=args.pipeline,
        duration=args.duration,
        warmup=args.warmup,
        get_fraction=args.get_fraction,
        keyspace=args.keyspace,
        rate=args.rate,
        timeout=args.timeout,
        seed=args.seed,
    )
    if args.smoke:
        # CI sizing: short window, modest concurrency, in-process nodes.
        spec_kwargs.update(duration=2.0, warmup=0.3)
    if args.node:
        endpoints = [_parse_endpoint(text) for text in args.node]
        result = run_load_sync(LoadSpec(endpoints=endpoints, **spec_kwargs))
    else:
        import asyncio

        result = asyncio.run(
            run_against_localnet(spec_kwargs, t_peers=2, s_peers=1, seed=args.seed + 5)
        )
    print(result)
    if args.output:
        _append_bench_record(args.output, result.to_dict())
    if args.smoke:
        problems = smoke_result_ok(result, min_get_ops=10 * POLLING_ERA_GET_OPS)
        for problem in problems:
            print(f"smoke FAIL: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(
            f"smoke OK: {result.get_throughput_ops:.1f} get ops/s "
            f"(>= {10 * POLLING_ERA_GET_OPS:.0f}), zero errors",
            file=sys.stderr,
        )
    return 0


def _append_bench_record(path: str, record: dict) -> None:
    """Append one run to a JSON file holding a list of runs.

    The rewrite is atomic (same-directory tmp + fsync + rename) so a
    crash mid-write -- or two bench invocations racing on the same
    ``--output`` -- can never leave a truncated/interleaved file behind:
    readers see either the old list or the new one.
    """
    import os
    import tempfile

    runs = []
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh)
            runs = existing if isinstance(existing, list) else [existing]
        except (OSError, ValueError):
            runs = []
    runs.append(record)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(runs, fh, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs import run_top

    host, port = _parse_endpoint(args.node)
    try:
        run_top(host, port, interval=args.interval, count=args.count)
    except OSError as exc:
        print(f"error: cannot scrape {host}:{port}: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "demo": _cmd_demo,
        "experiment": _cmd_experiment,
        "sweep": _cmd_sweep,
        "analyze": _cmd_analyze,
        "serve": _cmd_serve,
        "node": _cmd_node,
        "put": _cmd_put,
        "get": _cmd_get,
        "put-file": _cmd_put_file,
        "get-file": _cmd_get_file,
        "status": _cmd_status,
        "top": _cmd_top,
        "bench-clients": _cmd_bench_clients,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
