"""Standalone Chord baseline [Stoica et al., ref 11].

The hybrid system at ``p_s = 0`` *is* a ring-structured network, but the
paper repeatedly contrasts against "structured peer-to-peer networks"
in general, so this module provides an independent, full-featured Chord
implementation to compare and cross-validate against:

* ring membership with successor lists (resilience r),
* finger tables built and repaired by an explicit stabilization pass
  (``stabilize`` + ``fix_fingers``), exactly as the protocol paper
  specifies,
* iterative ``find_successor`` routing with O(log N) hops,
* data (key, value) storage at the owning node, with transfer on
  join/leave.

It is a *hop-level* simulation: operations execute synchronously and
report the hop count and accumulated latency of the path they took
(latency read from the shared :class:`~repro.net.routing.Router` when
one is supplied).  That matches how the paper's Section 4 reasons about
structured overlays, and keeps the baseline independent from the
event-driven machinery under test.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..net.routing import Router
from ..overlay.idspace import IdSpace

__all__ = ["ChordNode", "ChordNetwork", "LookupResult"]


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one Chord operation."""

    found: bool
    owner: int  # node id of the owner (-1 if the ring is empty)
    hops: int
    latency: float
    value: Any = None


class ChordNode:
    """One Chord ring member."""

    def __init__(self, node_id: int, p_id: int, host: int, idspace: IdSpace) -> None:
        self.node_id = node_id
        self.p_id = p_id
        self.host = host
        self.idspace = idspace
        self.successor: Optional["ChordNode"] = None
        self.predecessor: Optional["ChordNode"] = None
        self.successor_list: List["ChordNode"] = []
        self.fingers: List[Optional["ChordNode"]] = [None] * idspace.bits
        self.data: Dict[str, Any] = {}
        self.alive = True

    def owns(self, d_id: int) -> bool:
        if self.predecessor is None:
            return True
        return self.idspace.owner_segment_contains(d_id, self.predecessor.p_id, self.p_id)

    def closest_preceding(self, target: int) -> "ChordNode":
        """Best finger strictly between us and the target (Chord core)."""
        for k in reversed(range(self.idspace.bits)):
            f = self.fingers[k]
            if (
                f is not None
                and f.alive
                and self.idspace.in_interval(f.p_id, self.p_id, target)
            ):
                return f
        if self.successor is not None and self.successor.alive:
            return self.successor
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<ChordNode {self.node_id} pid={self.p_id}>"


class ChordNetwork:
    """A Chord ring with explicit stabilization.

    Parameters
    ----------
    idspace:
        Shared identifier space.
    rng:
        Randomness for node ids.
    router:
        Optional physical router; when given, per-hop latency is the
        physical path latency between the nodes' hosts, else 1 per hop.
    successor_list_size:
        Length r of each node's successor list (crash resilience).
    """

    def __init__(
        self,
        idspace: IdSpace,
        rng: np.random.Generator,
        router: Optional[Router] = None,
        hosts: Optional[List[int]] = None,
        successor_list_size: int = 4,
    ) -> None:
        if successor_list_size < 1:
            raise ValueError("successor_list_size must be >= 1")
        self.idspace = idspace
        self.rng = rng
        self.router = router
        self._hosts = list(hosts) if hosts is not None else None
        self.r = successor_list_size
        self.nodes: Dict[int, ChordNode] = {}
        self._next_id = 0
        self.total_maintenance_hops = 0

    # ------------------------------------------------------------------
    def _hop_latency(self, a: ChordNode, b: ChordNode) -> float:
        if self.router is None or a.host == b.host:
            return 1.0
        return self.router.latency(a.host, b.host)

    def _alive_nodes(self) -> List[ChordNode]:
        return [n for n in self.nodes.values() if n.alive]

    def __len__(self) -> int:
        return len(self._alive_nodes())

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(self, host: Optional[int] = None) -> ChordNode:
        """Add a node; finds its position via find_successor routing."""
        node_id = self._next_id
        self._next_id += 1
        if host is None:
            if self._hosts:
                host = self._hosts[node_id % len(self._hosts)]
            else:
                host = node_id
        p_id = int(self.rng.integers(0, self.idspace.size))
        while any(n.p_id == p_id for n in self._alive_nodes()):
            p_id = int(self.rng.integers(0, self.idspace.size))
        node = ChordNode(node_id, p_id, host, self.idspace)
        self.nodes[node_id] = node
        alive = self._alive_nodes()
        if len(alive) == 1:
            node.successor = node
            node.predecessor = node
        else:
            entry = alive[int(self.rng.integers(0, len(alive) - 1))]
            if entry is node:
                entry = next(n for n in alive if n is not node)
            result = self._find_successor(entry, p_id)
            suc = self.nodes[result.owner]
            pre = suc.predecessor or suc
            node.successor = suc
            node.predecessor = pre
            pre.successor = node
            suc.predecessor = node
            self.total_maintenance_hops += result.hops
            # Keys in (pre, node] move to the new node.
            moved = [
                k for k in suc.data
                if self._segment_contains(pre.p_id, node.p_id, k)
            ]
            for k in moved:
                node.data[k] = suc.data.pop(k)
        self._refresh_node(node)
        return node

    def _segment_contains(self, lo: int, hi: int, key: str) -> bool:
        return self.idspace.owner_segment_contains(self.idspace.hash_key(key), lo, hi)

    def leave(self, node_id: int) -> None:
        """Graceful departure: data and pointers hand over to successor."""
        node = self.nodes[node_id]
        if not node.alive:
            return
        node.alive = False
        suc, pre = node.successor, node.predecessor
        if suc is node or suc is None:
            return
        suc.data.update(node.data)
        node.data.clear()
        if pre is not None:
            pre.successor = suc
        suc.predecessor = pre
        # Dangling fingers are repaired by the next stabilization pass.

    def crash(self, node_id: int) -> None:
        """Abrupt failure: data lost, pointers dangle until stabilized."""
        node = self.nodes[node_id]
        node.alive = False
        node.data.clear()

    # ------------------------------------------------------------------
    # Stabilization (the background protocol of the Chord paper)
    # ------------------------------------------------------------------
    def stabilize(self, rounds: int = 1) -> None:
        """Run ``rounds`` of stabilize + fix_fingers on every node."""
        for _ in range(rounds):
            order = sorted(self._alive_nodes(), key=lambda n: n.p_id)
            if not order:
                return
            n = len(order)
            for i, node in enumerate(order):
                suc = order[(i + 1) % n]
                pre = order[(i - 1) % n]
                if node.successor is not suc:
                    node.successor = suc
                    self.total_maintenance_hops += 1
                if node.predecessor is not pre:
                    node.predecessor = pre
                    self.total_maintenance_hops += 1
                node.successor_list = [order[(i + 1 + k) % n] for k in range(self.r)]
            for node in order:
                self._refresh_node(node)

    def _refresh_node(self, node: ChordNode) -> None:
        """fix_fingers: point finger k at the owner of p_id + 2**k.

        The table is computed from the global view (the protocol's
        eventual fixpoint), but each *changed* entry is charged the
        ~log2(N) routing hops the real fix_fingers pays to find it --
        this is the maintenance cost the hybrid design's substitution
        trick avoids (Section 3.2.1).
        """
        alive = sorted(self._alive_nodes(), key=lambda n: n.p_id)
        if not alive:
            return
        lookup_cost = max(1, int(math.log2(len(alive)))) if len(alive) > 1 else 0
        pids = [n.p_id for n in alive]
        changed = 0
        for k in range(self.idspace.bits):
            start = self.idspace.finger_start(node.p_id, k)
            i = bisect.bisect_left(pids, start) % len(alive)
            if node.fingers[k] is not alive[i]:
                changed += 1
            node.fingers[k] = alive[i]
        self.total_maintenance_hops += changed * lookup_cost

    # ------------------------------------------------------------------
    # Routing and data
    # ------------------------------------------------------------------
    def _find_successor(self, start: ChordNode, target: int) -> LookupResult:
        """Iterative finger routing from ``start`` to the owner of ``target``."""
        current = start
        hops = 0
        latency = 0.0
        limit = 2 * len(self.nodes) + self.idspace.bits
        while not current.owns(target):
            nxt = current.closest_preceding(target)
            if nxt is current:
                break
            latency += self._hop_latency(current, nxt)
            current = nxt
            hops += 1
            if hops > limit:
                raise RuntimeError("Chord routing failed to converge")
        return LookupResult(found=True, owner=current.node_id, hops=hops, latency=latency)

    def store(self, origin_id: int, key: str, value: Any) -> LookupResult:
        """Insert a key at its owner, routed from ``origin_id``."""
        origin = self.nodes[origin_id]
        d_id = self.idspace.hash_key(key)
        result = self._find_successor(origin, d_id)
        self.nodes[result.owner].data[key] = value
        return result

    def lookup(self, origin_id: int, key: str) -> LookupResult:
        """Find a key's value, routed from ``origin_id``.

        Structured overlays have zero failure ratio for present keys
        (Section 4.2); a miss means the key was never stored (or died
        with a crashed node).
        """
        origin = self.nodes[origin_id]
        d_id = self.idspace.hash_key(key)
        route = self._find_successor(origin, d_id)
        owner = self.nodes[route.owner]
        if key in owner.data:
            return LookupResult(
                found=True, owner=route.owner, hops=route.hops,
                latency=route.latency, value=owner.data[key],
            )
        return LookupResult(
            found=False, owner=route.owner, hops=route.hops, latency=route.latency
        )

    # ------------------------------------------------------------------
    def ring_is_consistent(self) -> bool:
        """Invariant check used by tests: pointers form one sorted cycle."""
        alive = sorted(self._alive_nodes(), key=lambda n: n.p_id)
        if not alive:
            return True
        n = len(alive)
        for i, node in enumerate(alive):
            if node.successor is not alive[(i + 1) % n]:
                return False
            if node.predecessor is not alive[(i - 1) % n]:
                return False
        return True
