"""Baseline comparators.

A standalone Chord implementation (:mod:`~repro.baselines.chord`) and a
standalone Gnutella-style flooding network
(:mod:`~repro.baselines.gnutella`) -- the two "pure" designs the hybrid
system interpolates between (its ``p_s = 0`` and ``p_s = 1`` limits).
"""

from .chord import ChordNetwork, ChordNode, LookupResult
from .gnutella import FloodResult, GnutellaNetwork, GnutellaPeer

__all__ = [
    "ChordNetwork",
    "ChordNode",
    "LookupResult",
    "FloodResult",
    "GnutellaNetwork",
    "GnutellaPeer",
]
