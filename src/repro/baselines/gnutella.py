"""Standalone Gnutella-style baseline [ref 13].

A decentralized unstructured overlay: peers join by linking to a few
random existing peers (no topology constraint), data lives wherever its
creator put it, and lookups are TTL-bounded floods with duplicate
suppression.  This is the ``p_s = 1`` end of the paper's spectrum, kept
as an independent implementation for comparison and cross-validation.

Like the Chord baseline this is a hop-level synchronous simulation:
``lookup`` runs the flood breadth-first and reports success, the number
of peers contacted (the paper's *connum* ingredient), duplicate
deliveries (the tree-vs-mesh bandwidth argument of Section 3.2.2) and
the latency along the discovery path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

import numpy as np

from ..net.routing import Router

__all__ = ["GnutellaPeer", "GnutellaNetwork", "FloodResult"]


@dataclass(frozen=True)
class FloodResult:
    """Outcome of one flooded lookup."""

    found: bool
    holder: int  # peer id that answered (-1 on failure)
    contacts: int  # distinct peers that received the query
    duplicates: int  # redundant deliveries over mesh cross-links
    latency: float  # along the path that reached the holder
    hops: int


class GnutellaPeer:
    """One unstructured peer: a neighbor set and a database."""

    def __init__(self, peer_id: int, host: int) -> None:
        self.peer_id = peer_id
        self.host = host
        self.neighbors: Set[int] = set()
        self.data: Dict[str, Any] = {}
        self.alive = True


class GnutellaNetwork:
    """A random-mesh unstructured overlay.

    Parameters
    ----------
    rng:
        Randomness for neighbor selection.
    links_per_join:
        How many random existing peers a newcomer links to (Gnutella's
        loose rule-of-thumb fan-out).
    router / hosts:
        Optional physical latency model, as in the Chord baseline.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        links_per_join: int = 3,
        router: Optional[Router] = None,
        hosts: Optional[List[int]] = None,
    ) -> None:
        if links_per_join < 1:
            raise ValueError("links_per_join must be >= 1")
        self.rng = rng
        self.links_per_join = links_per_join
        self.router = router
        self._hosts = list(hosts) if hosts is not None else None
        self.peers: Dict[int, GnutellaPeer] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    def _hop_latency(self, a: GnutellaPeer, b: GnutellaPeer) -> float:
        if self.router is None or a.host == b.host:
            return 1.0
        return self.router.latency(a.host, b.host)

    def _alive(self) -> List[GnutellaPeer]:
        return [p for p in self.peers.values() if p.alive]

    def __len__(self) -> int:
        return len(self._alive())

    # ------------------------------------------------------------------
    # Membership: "peers joining the network following some loose rules"
    # ------------------------------------------------------------------
    def join(self, host: Optional[int] = None) -> GnutellaPeer:
        peer_id = self._next_id
        self._next_id += 1
        if host is None:
            host = self._hosts[peer_id % len(self._hosts)] if self._hosts else peer_id
        peer = GnutellaPeer(peer_id, host)
        alive = self._alive()
        self.peers[peer_id] = peer
        if alive:
            k = min(self.links_per_join, len(alive))
            picks = self.rng.choice(len(alive), size=k, replace=False)
            for i in picks:
                other = alive[int(i)]
                peer.neighbors.add(other.peer_id)
                other.neighbors.add(peer_id)
        return peer

    def leave(self, peer_id: int) -> None:
        """Graceful leave: neighbors drop the link (data leaves with it)."""
        peer = self.peers[peer_id]
        peer.alive = False
        for n in peer.neighbors:
            other = self.peers.get(n)
            if other is not None:
                other.neighbors.discard(peer_id)
        peer.neighbors.clear()

    def crash(self, peer_id: int) -> None:
        """Abrupt failure: links dangle (floods just skip dead peers)."""
        self.peers[peer_id].alive = False

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def store(self, origin_id: int, key: str, value: Any) -> None:
        """Unstructured placement: data stays with its creator."""
        self.peers[origin_id].data[key] = value

    def lookup(self, origin_id: int, key: str, ttl: int) -> FloodResult:
        """Breadth-first TTL flood from ``origin_id``.

        Stops expanding past a peer that has the item (it answers
        directly), mirroring the hybrid system's flood; counts every
        distinct contact and every duplicate delivery.
        """
        if ttl < 0:
            raise ValueError("ttl must be >= 0")
        origin = self.peers[origin_id]
        if not origin.alive:
            raise ValueError(f"origin {origin_id} is not alive")
        if key in origin.data:
            return FloodResult(True, origin_id, 0, 0, 0.0, 0)
        seen: Set[int] = {origin_id}
        duplicates = 0
        contacts = 0
        best: Optional[FloodResult] = None
        frontier = deque([(origin_id, 0, 0.0)])  # (peer, depth, latency)
        while frontier:
            pid, depth, latency = frontier.popleft()
            if depth >= ttl:
                continue
            peer = self.peers[pid]
            for n in sorted(peer.neighbors):
                other = self.peers.get(n)
                if other is None or not other.alive:
                    continue
                hop_lat = latency + self._hop_latency(peer, other)
                if n in seen:
                    duplicates += 1
                    continue
                seen.add(n)
                contacts += 1
                if key in other.data:
                    candidate = FloodResult(
                        True, n, contacts, duplicates, hop_lat, depth + 1
                    )
                    if best is None or candidate.latency < best.latency:
                        best = candidate
                    continue  # holder stops forwarding
                frontier.append((n, depth + 1, hop_lat))
        if best is not None:
            # Contacts/duplicates keep accumulating after the hit --
            # flood packets already in flight are not recalled.
            return FloodResult(True, best.holder, contacts, duplicates, best.latency, best.hops)
        return FloodResult(False, -1, contacts, duplicates, 0.0, 0)

    # ------------------------------------------------------------------
    def reachable_within(self, origin_id: int, ttl: int) -> int:
        """How many peers a TTL flood from ``origin_id`` can reach."""
        seen = {origin_id}
        frontier = deque([(origin_id, 0)])
        while frontier:
            pid, depth = frontier.popleft()
            if depth >= ttl:
                continue
            for n in self.peers[pid].neighbors:
                other = self.peers.get(n)
                if other is None or not other.alive or n in seen:
                    continue
                seen.add(n)
                frontier.append((n, depth + 1))
        return len(seen) - 1
